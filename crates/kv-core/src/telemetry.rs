//! The zero-dependency telemetry substrate: log-bucketed latency
//! histograms, a registry of named counters/gauges/histograms, and a
//! bounded structured trace ring.
//!
//! Every duration that enters here was produced by [`node_rt`]'s clock
//! — virtual time on the simulator, wall-clock on the UDP runtime — at
//! the *same* instrumentation points ([`crate::ClientCore`],
//! [`crate::TwoPcEngine`]). Simulated runs therefore yield
//! deterministic, replayable telemetry: two same-seed chaos runs render
//! byte-identical snapshots, and that render joins the chaos harness's
//! byte-identity contract.
//!
//! Determinism rules (checked by the `determinism_taint` lint, which
//! treats `render`/`snapshot`/`metrics` entry points as roots):
//!
//! * storage is `BTreeMap`-ordered — no hash-order iteration can reach
//!   a snapshot;
//! * the render path is integer-only — no float formatting, whose
//!   shortest-representation rounding is a portability hazard;
//! * no clock is read here — callers pass [`Time`] in.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use node_rt::Time;

use crate::types::OpId;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear buckets, bounding the relative quantile error at
/// `2^-SUB_BITS` (6.25%).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;

/// A log-bucketed latency histogram over `u64` nanoseconds.
///
/// Values below 16 ns land in exact buckets; above that, each
/// power-of-two octave is split into 16 linear sub-buckets, so any
/// reported quantile is within 6.25% of the true sample. Buckets are
/// stored sparsely (ordered map), which keeps empty and small
/// histograms cheap to clone — the DPOR explorer forks engines (and
/// their telemetry) per schedule branch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sparse bucket counts, keyed by bucket index.
    buckets: BTreeMap<u32, u64>,
    /// Total samples.
    count: u64,
    /// Exact sum of all samples, in ns.
    sum_ns: u64,
    /// Exact minimum sample, in ns.
    min_ns: u64,
    /// Exact maximum sample, in ns.
    max_ns: u64,
}

/// The bucket index a value falls into.
fn bucket_index(v: u64) -> u32 {
    if v < SUB {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as u32;
    (msb - SUB_BITS + 1) * SUB as u32 + sub
}

/// The largest value mapping to bucket `i` (quantiles report this
/// upper bound, so a quantile never under-states a sample).
fn bucket_upper(i: u32) -> u64 {
    let i = u64::from(i);
    if i < SUB {
        return i;
    }
    let octave = i / SUB;
    let sub = i % SUB;
    ((SUB + sub + 1) << (octave - 1)) - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: Time) {
        let ns = d.as_ns();
        *self.buckets.entry(bucket_index(ns)).or_insert(0) += 1;
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// The exact smallest sample (zero when empty).
    pub fn min(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            Time(self.min_ns)
        }
    }

    /// The exact largest sample (zero when empty).
    pub fn max(&self) -> Time {
        if self.count == 0 {
            Time::ZERO
        } else {
            Time(self.max_ns)
        }
    }

    /// Integer mean (zero when empty).
    pub fn mean(&self) -> Time {
        Time(self.sum_ns.checked_div(self.count).unwrap_or(0))
    }

    /// Fold another histogram into this one (bucket-wise add).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (&i, &n) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += n;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min_ns = other.min_ns;
                self.max_ns = other.max_ns;
            } else {
                self.min_ns = self.min_ns.min(other.min_ns);
                self.max_ns = self.max_ns.max(other.max_ns);
            }
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// The `num/den` quantile (e.g. `quantile(99, 100)` for p99) as the
    /// upper bound of the bucket holding that rank — integer math only.
    /// The reported value is at most 6.25% above the true sample and
    /// never below it (clamped to the exact observed max). Zero when
    /// empty.
    pub fn quantile(&self, num: u64, den: u64) -> Time {
        if self.count == 0 || den == 0 {
            return Time::ZERO;
        }
        // ceil(count * num / den), clamped to [1, count].
        let rank =
            (self.count.saturating_mul(num).saturating_add(den - 1) / den).clamp(1, self.count);
        let mut seen = 0u64;
        for (&i, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Time(bucket_upper(i).min(self.max_ns));
            }
        }
        Time(self.max_ns)
    }

    /// One byte-stable summary line: integer fields only, bucket order.
    pub fn render(&self, name: &str, out: &mut String) {
        let _ = write!(
            out,
            "hist {name} count={} sum_ns={} min_ns={} max_ns={}",
            self.count,
            self.sum_ns,
            self.min().as_ns(),
            self.max().as_ns()
        );
        for (label, num) in [("p50", 50), ("p99", 99), ("p999", 999)] {
            let den = if num > 100 { 1000 } else { 100 };
            let _ = write!(out, " {label}_ns={}", self.quantile(num, den).as_ns());
        }
        out.push('\n');
    }
}

/// A registry of named counters, gauges, and latency histograms.
///
/// All three maps are ordered, so [`MetricsRegistry::render`] is a pure
/// function of the recorded values — the simulator's determinism
/// contract extends to telemetry. Merging registries (per-node →
/// cluster-wide) is bucket-wise/sum-wise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    hists: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `n` to counter `name` (created at zero).
    pub fn add(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_owned(), n);
            }
        }
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Record duration `d` into histogram `name` (created empty).
    pub fn record(&mut self, name: &str, d: Time) {
        match self.hists.get_mut(name) {
            Some(h) => h.record(d),
            None => {
                let mut h = LatencyHistogram::new();
                h.record(d);
                self.hists.insert(name.to_owned(), h);
            }
        }
    }

    /// Counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any samples were recorded.
    pub fn hist(&self, name: &str) -> Option<&LatencyHistogram> {
        self.hists.get(name)
    }

    /// Iterate all histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Fold `other` into this registry: counters and histogram buckets
    /// add; a gauge takes the maximum (gauges here are monotone facts
    /// like "WAL records replayed").
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.add(k, v);
        }
        for (k, &v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(v);
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// The byte-stable snapshot: one line per metric, name order within
    /// each section, integer fields only.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k} {v}");
        }
        for (k, h) in &self.hists {
            h.render(k, &mut out);
        }
        out
    }
}

/// Which protocol phase a trace event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Client issued (or re-issued) an attempt.
    Issue,
    /// Client retry timer fired and the attempt was re-sent.
    Retry,
    /// Client completed the op (`arg` = 1 ok / 0 failed).
    Complete,
    /// 2PC phase 1: the lock was taken and +L/W scheduled.
    Lock,
    /// Phase 1 found the lock held: the attempt queued behind it.
    Queued,
    /// The local object write completed.
    Write,
    /// A phase-1 ack arrived at the coordinator.
    Ack1,
    /// A phase-2 ack arrived at the coordinator.
    Ack2,
    /// The commit timestamp applied.
    Commit,
    /// The round aborted.
    Abort,
    /// The WAL was forced ahead of an acknowledgement.
    WalSync,
    /// A coordination deadline fired.
    Deadline,
    /// The coordinator replied to the client.
    Reply,
}

impl Phase {
    /// The stable render tag.
    fn tag(self) -> &'static str {
        match self {
            Phase::Issue => "issue",
            Phase::Retry => "retry",
            Phase::Complete => "complete",
            Phase::Lock => "lock",
            Phase::Queued => "queued",
            Phase::Write => "write",
            Phase::Ack1 => "ack1",
            Phase::Ack2 => "ack2",
            Phase::Commit => "commit",
            Phase::Abort => "abort",
            Phase::WalSync => "wal-sync",
            Phase::Deadline => "deadline",
            Phase::Reply => "reply",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (the caller's [`node_rt::NodeIo`] clock).
    pub at: Time,
    /// The operation it belongs to.
    pub op: OpId,
    /// The protocol phase.
    pub phase: Phase,
    /// Phase-specific detail (attempt number, ok flag, byte count …).
    pub arg: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// When full, the oldest event is dropped and counted — a long run
/// keeps its most recent window instead of growing without bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSink {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceSink {
    /// A sink holding at most `cap` events.
    pub fn new(cap: usize) -> TraceSink {
        TraceSink {
            cap,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently held (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Held event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or refused) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The byte-stable render: one line per event, insertion order,
    /// integer fields only.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            let _ = writeln!(
                out,
                "trace t_ns={} op={}#{} phase={} arg={}",
                ev.at.as_ns(),
                ev.op.client,
                ev.op.client_seq,
                ev.phase.tag(),
                ev.arg
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "trace dropped={}", self.dropped);
        }
        out
    }
}

/// Telemetry configuration — a sibling of [`crate::EngineCfg`] in the
/// layered cluster config ([`crate::ClusterSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryCfg {
    /// Record metrics and trace events at all. Off turns every
    /// instrumentation point into a no-op (the DPOR explorer runs with
    /// telemetry on; it is cheap because empty structures clone for
    /// free).
    pub enabled: bool,
    /// Ring capacity of each component's [`TraceSink`].
    pub trace_capacity: usize,
}

impl Default for TelemetryCfg {
    fn default() -> TelemetryCfg {
        TelemetryCfg {
            enabled: true,
            trace_capacity: 256,
        }
    }
}

/// One component's telemetry: a metrics registry plus a trace ring.
///
/// [`crate::ClientCore`] and [`crate::TwoPcEngine`] each embed one;
/// cluster-level `metrics()` accessors merge the registries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    enabled: bool,
    /// The named metrics.
    pub reg: MetricsRegistry,
    /// The bounded trace ring.
    pub trace: TraceSink,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new(&TelemetryCfg::default())
    }
}

impl Telemetry {
    /// Telemetry shaped by `cfg`.
    pub fn new(cfg: &TelemetryCfg) -> Telemetry {
        Telemetry {
            enabled: cfg.enabled,
            reg: MetricsRegistry::new(),
            trace: TraceSink::new(if cfg.enabled { cfg.trace_capacity } else { 0 }),
        }
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a duration sample (no-op when disabled).
    pub fn record(&mut self, name: &str, d: Time) {
        if self.enabled {
            self.reg.record(name, d);
        }
    }

    /// Bump a counter (no-op when disabled).
    pub fn add(&mut self, name: &str, n: u64) {
        if self.enabled {
            self.reg.add(name, n);
        }
    }

    /// Set a gauge (no-op when disabled).
    pub fn set_gauge(&mut self, name: &str, v: u64) {
        if self.enabled {
            self.reg.set_gauge(name, v);
        }
    }

    /// Append a trace event (no-op when disabled).
    pub fn event(&mut self, at: Time, op: OpId, phase: Phase, arg: u64) {
        if self.enabled {
            self.trace.push(TraceEvent { at, op, phase, arg });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use node_rt::Ipv4;

    fn op(seq: u64) -> OpId {
        OpId {
            client: Ipv4::new(10, 0, 1, 1),
            client_seq: seq,
        }
    }

    #[test]
    fn buckets_contain_their_values_and_stay_tight() {
        // Every value maps into a bucket whose upper bound is >= the
        // value and within 6.25% above it.
        let mut checked = 0u64;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + 1, v * 3 - 1] {
                let i = bucket_index(probe);
                let hi = bucket_upper(i);
                assert!(hi >= probe, "upper({i}) = {hi} < {probe}");
                assert!(
                    hi - probe <= probe / (SUB - 1) + 1,
                    "bucket too wide at {probe}: upper {hi}"
                );
                if i > 0 {
                    assert!(
                        bucket_upper(i - 1) < probe,
                        "previous bucket already covers {probe}"
                    );
                }
                checked += 1;
            }
            v *= 3;
        }
        assert!(checked > 100);
    }

    #[test]
    fn quantile_bounds_and_monotonicity() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Time::from_us(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(50, 100);
        let p99 = h.quantile(99, 100);
        let p999 = h.quantile(999, 1000);
        assert!(p50 <= p99 && p99 <= p999);
        // Within the 6.25% bucket error of the true values.
        assert!(
            p50 >= Time::from_us(500) && p50 <= Time::from_us(532),
            "{p50:?}"
        );
        assert!(
            p99 >= Time::from_us(990) && p99 <= Time::from_us(1052),
            "{p99:?}"
        );
        assert!(p999 <= h.max(), "quantile clamped to the observed max");
        assert_eq!(h.quantile(100, 100), h.max());
        assert_eq!(h.quantile(0, 100).as_ns(), bucket_upper(bucket_index(1000)));
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Time(i * i * 37 + 1);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 500);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        let mut ra = String::new();
        let mut rw = String::new();
        a.render("x", &mut ra);
        whole.render("x", &mut rw);
        assert_eq!(ra, rw);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(99, 100), Time::ZERO);
        assert_eq!(h.min(), Time::ZERO);
        assert_eq!(h.max(), Time::ZERO);
        assert_eq!(h.mean(), Time::ZERO);
        let mut out = String::new();
        h.render("empty", &mut out);
        assert_eq!(
            out,
            "hist empty count=0 sum_ns=0 min_ns=0 max_ns=0 p50_ns=0 p99_ns=0 p999_ns=0\n"
        );
    }

    #[test]
    fn registry_render_is_byte_stable_and_ordered() {
        let build = || {
            let mut r = MetricsRegistry::new();
            r.add("z.last", 3);
            r.add("a.first", 1);
            r.set_gauge("mid", 7);
            r.record("lat", Time::from_us(10));
            r.record("lat", Time::from_us(20));
            r
        };
        let r1 = build();
        let r2 = build();
        assert_eq!(r1.render(), r2.render());
        let text = r1.render();
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z, "counters render in name order");
        assert!(text.contains("counter a.first 1"));
        assert!(text.contains("gauge mid 7"));
        assert!(text.contains("hist lat count=2"));
        assert!(
            !text.contains('.') || !text.contains("e-"),
            "integer-only render"
        );
    }

    #[test]
    fn registry_merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.add("ops", 2);
        a.record("lat", Time::from_us(5));
        let mut b = MetricsRegistry::new();
        b.add("ops", 3);
        b.add("only_b", 1);
        b.record("lat", Time::from_us(500));
        b.set_gauge("floor", 9);
        a.merge(&b);
        assert_eq!(a.counter("ops"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("floor"), Some(9));
        let h = a.hist("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Time::from_us(500));
    }

    #[test]
    fn trace_ring_bounds_and_counts_drops() {
        let mut t = TraceSink::new(3);
        for i in 0..5u64 {
            t.push(TraceEvent {
                at: Time(i),
                op: op(i),
                phase: Phase::Issue,
                arg: i,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let firsts: Vec<u64> = t.events().map(|e| e.arg).collect();
        assert_eq!(firsts, vec![2, 3, 4], "oldest evicted first");
        let text = t.render();
        assert!(text.contains("phase=issue"));
        assert!(text.contains("trace dropped=2"));
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut tel = Telemetry::new(&TelemetryCfg {
            enabled: false,
            trace_capacity: 64,
        });
        tel.add("ops", 1);
        tel.record("lat", Time::from_us(1));
        tel.event(Time::ZERO, op(1), Phase::Issue, 1);
        assert!(tel.reg.is_empty());
        assert!(tel.trace.is_empty());
    }
}

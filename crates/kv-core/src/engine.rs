//! The shared replication engine beneath NICEKV and NOOB.
//!
//! Both systems run the *same* put state machines — NICE-2PC of §4.3 /
//! Figure 3 (lock, forced log write, object write, timestamp round) and
//! the primary-only / quorum direct path — and differ only in how the
//! network routes the messages between replicas. This module owns that
//! system-agnostic half: the [`ObjectStore`] mutations, the in-memory
//! lock/coordinator tables, the waiting-writer queue, the §4.4 lock
//! resolution rules, and the unified [`Counters`].
//!
//! The engine is transport-free. Every state transition returns its
//! outward-visible consequences as [`Effect`]s that the policy adapter
//! (vring multicast for NICE, unicast fan-out for NOOB) turns into wire
//! messages and timers. The adapters therefore cannot drift apart on
//! protocol logic — the invariant the old textual `enum_parity` lint
//! approximated is now enforced by this shared type.

use std::collections::{BTreeMap, BTreeSet};

use node_rt::{Ipv4, Time};

use crate::error::KvError;
use crate::store::{ObjectStore, StorageCfg};
use crate::telemetry::{MetricsRegistry, Phase, Telemetry, TelemetryCfg};
use crate::types::{NodeIdx, OpId, Timestamp, Value};

/// Unified observable counters for both systems' storage nodes.
///
/// The engine itself bumps `puts_committed` / `puts_aborted` /
/// `internal_errors`; the policy adapters bump the routing-dependent
/// ones (`gets_served`, `forwarded`, `replica_writes`,
/// `puts_coordinated`, `failure_reports`) through
/// [`TwoPcEngine::counters_mut`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Gets served from the local store.
    pub gets_served: u64,
    /// Requests forwarded to the responsible node (NICE: handoff get
    /// misses; NOOB: ROG/RAC extra hops).
    pub forwarded: u64,
    /// Puts committed locally.
    pub puts_committed: u64,
    /// Puts aborted.
    pub puts_aborted: u64,
    /// Puts coordinated as primary.
    pub puts_coordinated: u64,
    /// Replica writes performed as secondary.
    pub replica_writes: u64,
    /// Failure reports sent.
    pub failure_reports: u64,
    /// Internal invariant violations survived without panicking
    /// (see [`KvError`]); nonzero indicates a protocol bug.
    pub internal_errors: u64,
}

impl Counters {
    /// Fold these counters into a metrics registry under `engine.*` —
    /// the uniform snapshot surface, so harnesses need not harvest
    /// [`Counters`] structs per system.
    pub fn fold_into(&self, m: &mut MetricsRegistry) {
        m.add("engine.gets_served", self.gets_served);
        m.add("engine.forwarded", self.forwarded);
        m.add("engine.puts_committed", self.puts_committed);
        m.add("engine.puts_aborted", self.puts_aborted);
        m.add("engine.puts_coordinated", self.puts_coordinated);
        m.add("engine.replica_writes", self.replica_writes);
        m.add("engine.failure_reports", self.failure_reports);
        m.add("engine.internal_errors", self.internal_errors);
    }
}

/// Policy knobs fixed per system at construction time.
#[derive(Debug, Clone, Copy)]
pub struct EngineCfg {
    /// Storage device model.
    pub storage: StorageCfg,
    /// 2PC coordination deadline. `Some` arms a [`Effect::Deadline`] per
    /// coordination round (NICE, §4.4 failure handling); `None` runs
    /// without coordinator timeouts (the NOOB baseline has none).
    pub op_timeout: Option<Time>,
    /// Where the coordinator gives queued writers their turn. `true`:
    /// when the round retires (NOOB's primary drains inline, having no
    /// further self-delivery). `false`: when its own copy of the commit
    /// message loops back (NICE's primary receives its own switch
    /// multicast like any replica). The commit *itself* is always
    /// applied locally the moment the timestamp is generated — a lossy
    /// loopback must never be the only path to the primary's own
    /// durability (see `check_commit`).
    pub inline_commit: bool,
    /// Model the W step of Figure 3 as durable: a pending put whose
    /// local write finished survives a crash as an in-doubt entry for
    /// §4.4 lock resolution. The NOOB baseline keeps tentative values in
    /// memory only.
    pub durable_pending: bool,
    /// Telemetry shape for this engine's [`Telemetry`] bundle
    /// (histograms of 2PC phase timings, WAL-sync cost, and the
    /// structured trace ring).
    pub telemetry: TelemetryCfg,
    /// Break a conflicting lock whose holder has been silent this long.
    /// NICE runs `None`: its deadline + failure-detector machinery (§4.4)
    /// cleans up orphaned locks. The NOOB baseline has neither, so a lock
    /// abandoned by a crashed peer or a given-up client would wedge the
    /// key forever; a TTL longer than the client retry period is its only
    /// liveness backstop.
    pub stale_lock_ttl: Option<Time>,
}

/// The replica group for one key, from the engine's point of view:
/// everyone who must acknowledge, excluding the local node.
#[derive(Debug, Clone)]
pub struct Group {
    /// The other members that must ack (primary excluded).
    pub peers: Vec<NodeIdx>,
    /// The local node's address (becomes `Timestamp::primary` when this
    /// node generates a commit timestamp).
    pub self_addr: Ipv4,
}

/// The calling node's role for one key, per call — roles change under
/// membership churn, so the adapter derives it fresh from its routing
/// state each time.
#[derive(Debug, Clone, Copy)]
pub enum EngineRole<'a> {
    /// Coordinator for the key's partition.
    Primary(&'a Group),
    /// Replica that acknowledges to a coordinator.
    Peer,
    /// Holds the data but participates in no ack round (e.g. a node
    /// outside the current view applying a late commit).
    Observer,
}

/// An outward-visible consequence of an engine transition. The policy
/// adapter interprets each one — sending a wire message, arming a timer,
/// or re-entering its own put path — in its system's idiom.
#[derive(Debug, Clone)]
pub enum Effect {
    /// The local object write (W) completes at `at`; feed
    /// [`ReplicationEngine::on_written`] back then.
    WriteDone {
        /// Device completion time.
        at: Time,
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
    },
    /// Tell the coordinator this replica holds the data (phase-1 ack).
    Ack1 {
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
    },
    /// Tell the coordinator this replica committed (phase-2 ack).
    Ack2 {
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
    },
    /// Distribute the commit timestamp to every replica (Figure 3's
    /// "timestamp" message).
    Commit {
        /// The key.
        key: String,
        /// The attempt being committed.
        op: OpId,
        /// The commit timestamp.
        ts: Timestamp,
    },
    /// Distribute an abort for a failed round.
    Abort {
        /// The key.
        key: String,
        /// The attempt being aborted.
        op: OpId,
        /// When the abort was decided. Receivers drop the abort if their
        /// lock for `op` is newer — a retry re-locks under the same
        /// `OpId`, and a stale abort surfacing late (a healed partition
        /// flushing queued traffic) must not tear down the live round.
        issued: Time,
    },
    /// Answer the client.
    Reply {
        /// The client's address.
        client: Ipv4,
        /// The attempt this answers.
        op: OpId,
        /// Whether the put committed.
        ok: bool,
    },
    /// Arm (or re-arm) the coordination deadline for `at`.
    Deadline {
        /// When the deadline fires.
        at: Time,
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
    },
    /// These members never acknowledged within two deadlines — report
    /// them to the failure detector (§4.4).
    Unresponsive {
        /// The silent members.
        members: Vec<NodeIdx>,
    },
    /// A queued writer's turn came up: re-enter the put path with it.
    Redrive {
        /// The key.
        key: String,
        /// The queued attempt.
        op: OpId,
        /// Its value.
        value: Value,
    },
}

/// How one coordinated put completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoordKind {
    /// Two rounds: ack1 from all peers → commit timestamp → ack2 from
    /// all peers → reply.
    TwoPc,
    /// One round: reply once `quorum` copies (including the local one)
    /// exist; retire the record when every peer acked.
    Direct {
        /// Copies needed before the client reply.
        quorum: usize,
    },
}

/// Coordinator-side state of one in-flight put.
#[derive(Debug, Clone)]
struct Coord {
    client: Ipv4,
    acks1: BTreeSet<NodeIdx>,
    acks2: BTreeSet<NodeIdx>,
    self_written: bool,
    committed: bool,
    /// The timestamp generated when the round committed (drives re-sends
    /// of the timestamp message for retried puts whose round is stuck in
    /// phase 2).
    ts: Option<Timestamp>,
    replied: bool,
    timeouts: u32,
    kind: CoordKind,
}

impl Coord {
    fn new(client: Ipv4, kind: CoordKind) -> Coord {
        Coord {
            client,
            acks1: BTreeSet::new(),
            acks2: BTreeSet::new(),
            self_written: false,
            committed: false,
            ts: None,
            replied: false,
            timeouts: 0,
            kind,
        }
    }
}

/// The replication protocol surface both systems program against.
///
/// Every store mutation and every lock/coordinator-table transition of
/// the put path goes through these methods — the `layering` lint bans
/// the raw [`ObjectStore`] mutators from the adapter crates, so protocol
/// logic cannot be reimplemented (or drift) per system.
pub trait ReplicationEngine {
    /// Coordinator/replica 2PC phase 1: lock `key` for `op`, append the
    /// forced log entry (+L), and start the object write (W). Returns
    /// false when another attempt holds the lock — the op is queued and
    /// will come back as an [`Effect::Redrive`] once the lock clears.
    fn prepare(
        &mut self,
        key: &str,
        value: Value,
        op: OpId,
        now: Time,
        fx: &mut Vec<Effect>,
    ) -> bool;

    /// Replica-side 2PC data receive that never queues: lock if free
    /// (ignored otherwise — the commit round resolves conflicts), then
    /// log and write. Always emits [`Effect::WriteDone`].
    fn accept(&mut self, key: &str, value: Value, op: OpId, now: Time, fx: &mut Vec<Effect>);

    /// Open a coordinator record for `(key, op)` (idempotent). `quorum`
    /// `None` runs two-phase commit; `Some(q)` runs the direct path,
    /// replying once `q` copies (including the local one) exist.
    fn coordinate(&mut self, key: &str, op: OpId, client: Ipv4, quorum: Option<usize>);

    /// The local object write for `(key, op)` finished. A primary
    /// advances its coordination round (arming a deadline when the
    /// engine runs with `op_timeout`); a peer acks; an observer only
    /// records the write.
    fn on_written(
        &mut self,
        key: &str,
        op: OpId,
        role: EngineRole<'_>,
        now: Time,
        fx: &mut Vec<Effect>,
    );

    /// A phase-1 ack from `from` arrived at the coordinator.
    fn on_ack1(
        &mut self,
        key: &str,
        op: OpId,
        from: NodeIdx,
        g: &Group,
        now: Time,
        fx: &mut Vec<Effect>,
    );

    /// A phase-2 ack from `from` arrived at the coordinator. `g` may be
    /// `None` when the membership view vanished meanwhile: the ack is
    /// still recorded but the round cannot advance.
    fn on_ack2(
        &mut self,
        key: &str,
        op: OpId,
        from: NodeIdx,
        g: Option<&Group>,
        fx: &mut Vec<Effect>,
    );

    /// A commit timestamp arrived (including the coordinator's own copy
    /// looping back under NICE's switch multicast). Applies the commit,
    /// advances the failover sequence floor, and — on any role — gives a
    /// queued writer its turn. Returns whether the commit applied.
    fn on_commit(
        &mut self,
        key: &str,
        op: OpId,
        ts: Timestamp,
        role: EngineRole<'_>,
        fx: &mut Vec<Effect>,
    ) -> bool;

    /// An abort arrived: release the lock if `op` holds it — and the
    /// lock is not newer than the abort's decision time `issued` (a
    /// retry re-locks under the same `OpId`; an abort from the abandoned
    /// earlier round must not release the live round's lock) — then give
    /// a queued writer its turn. Returns whether state changed.
    fn on_abort(&mut self, key: &str, op: OpId, issued: Time, fx: &mut Vec<Effect>) -> bool;

    /// A coordination deadline fired. The first timeout re-arms; the
    /// second gives up: report silent members, and — if no commit
    /// decision was reached — abort the round and fail the client
    /// (§4.4 "Failures during Put Operation"). `g` may be `None` when
    /// the membership view vanished meanwhile.
    fn on_deadline(
        &mut self,
        key: &str,
        op: OpId,
        g: Option<&Group>,
        now: Time,
        fx: &mut Vec<Effect>,
    );

    /// Generate the next commit timestamp from this node's sequence.
    fn next_ts(&mut self, op: OpId, self_addr: Ipv4) -> Timestamp;

    /// Store a replica copy directly (no lock round): one forced device
    /// write plus an ordered commit. Returns the write completion time.
    fn apply_copy(&mut self, key: &str, value: Value, ts: Timestamp, now: Time) -> Time;

    /// Pay the device cost of a logged object write (+L then W) without
    /// touching the object map; returns the completion time. (Chain
    /// heads stage the write before passing the baton.)
    fn stage_write(&mut self, now: Time, size: u32) -> Time;

    /// Apply one object version without device cost or counting
    /// (ordered; stale versions are ignored).
    fn sync_object(&mut self, key: &str, value: Value, ts: Timestamp);

    /// Bulk-apply recovered objects (handoff drain): one forced device
    /// write for the batch, then ordered commits.
    fn ingest(&mut self, now: Time, objects: Vec<(String, Value, Timestamp)>);

    /// Drop a committed object (handoff cleanup after the owner drained
    /// it).
    fn forget(&mut self, key: &str);

    /// The §4.4 lock report for keys matching `filter`: every pending
    /// lock with the commit timestamp *of that attempt* if this node
    /// already applied it, plus this node's sequence floor.
    fn lock_report(
        &self,
        filter: &dyn Fn(&str) -> bool,
    ) -> (Vec<(String, OpId, Option<Timestamp>)>, u64);

    /// Raise the local sequence floor (new primary finishing lock
    /// resolution).
    fn observe_seq(&mut self, seq: u64);

    /// Is a coordinator record open for `(key, op)`? (duplicate-request
    /// detection)
    fn coordinating(&self, key: &str, op: OpId) -> bool;

    /// Crash: volatile protocol state (locks whose write never
    /// completed, coordinator records, queued writers) dies; committed
    /// objects, the persistent log, and the sequence floor survive.
    fn reset(&mut self);
}

/// The one implementation of [`ReplicationEngine`] both systems share.
///
/// `Clone` is an exploration hook: the DPOR explorer
/// ([`explore`](crate::explore)) forks whole engine states to probe the
/// footprint of a candidate step and to branch its schedule tree.
#[derive(Debug, Clone)]
pub struct TwoPcEngine {
    cfg: EngineCfg,
    store: ObjectStore,
    coords: BTreeMap<(String, OpId), Coord>,
    /// Writers queued behind a lock, FIFO per key.
    waiting: BTreeMap<String, Vec<(OpId, Value)>>,
    primary_seq: u64,
    /// Highest `client_seq` this node applied a commit for, per client.
    /// Because clients are closed-loop (one op in flight at a time), a
    /// floor at or above an attempt's sequence proves that attempt either
    /// committed or was abandoned — either way, a retry of it must not
    /// start a fresh round (re-committing an old value under a new, higher
    /// timestamp would resurrect it over later writes). Rebuilt from the
    /// committed objects after a crash.
    client_floors: BTreeMap<Ipv4, u64>,
    counters: Counters,
    last_internal_error: Option<KvError>,
    /// Telemetry bundle (phase histograms + trace ring).
    tel: Telemetry,
    /// Lock time of each live round, for phase-duration histograms.
    started: BTreeMap<(String, OpId), Time>,
    /// Latest `now` any transition saw — the timestamp source for the
    /// transitions that carry no clock (`on_ack2`, `on_commit`,
    /// `check_commit`). Deterministic: it only ever holds values the
    /// host clock handed in.
    clock: Time,
}

impl TwoPcEngine {
    /// An empty engine with the given policy.
    pub fn new(cfg: EngineCfg) -> TwoPcEngine {
        TwoPcEngine::with_store(cfg, ObjectStore::new(cfg.storage))
    }

    /// An engine recovered from (or newly backed by) the file WAL at
    /// `path`: opens the log, replays every intact record into a fresh
    /// store, and returns the engine plus the number of records
    /// replayed. The parent directory is created if missing. If the WAL
    /// cannot be opened (I/O error), the engine degrades to the
    /// memory-only model — a node that serves without crash-safety
    /// beats one that refuses to serve.
    pub fn recover(cfg: EngineCfg, path: &std::path::Path) -> (TwoPcEngine, usize) {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match crate::wal::FileWal::open(path) {
            Ok((wal, records)) => {
                let mut store = ObjectStore::with_wal(cfg.storage, Box::new(wal));
                store.replay(&records);
                let recovered = records.len();
                (TwoPcEngine::with_store(cfg, store), recovered)
            }
            Err(_) => (TwoPcEngine::new(cfg), 0),
        }
    }

    /// An engine over a pre-built store — the WAL recovery path: the
    /// caller replays its durable log into a store, then hands it here.
    /// The derived floors (failover sequence, per-client settled
    /// sequences) are rebuilt from the recovered committed objects, so
    /// a restarted node neither re-mints a timestamp below a commit it
    /// already holds nor reruns an attempt that already settled.
    pub fn with_store(cfg: EngineCfg, store: ObjectStore) -> TwoPcEngine {
        let mut e = TwoPcEngine {
            store,
            cfg,
            coords: BTreeMap::new(),
            waiting: BTreeMap::new(),
            primary_seq: 0,
            client_floors: BTreeMap::new(),
            counters: Counters::default(),
            last_internal_error: None,
            tel: Telemetry::new(&cfg.telemetry),
            started: BTreeMap::new(),
            clock: Time::ZERO,
        };
        e.rebuild_floors();
        e
    }

    /// Recompute the derived floors from the committed objects.
    fn rebuild_floors(&mut self) {
        self.primary_seq = self.primary_seq.max(self.store.max_primary_seq());
        self.client_floors.clear();
        let floors: Vec<(Ipv4, u64)> = self
            .store
            .iter()
            .map(|(_, c)| (c.ts.client, c.ts.client_seq))
            .collect();
        for (client, seq) in floors {
            let floor = self.client_floors.entry(client).or_insert(0);
            *floor = (*floor).max(seq);
        }
    }

    /// Force the WAL before an acknowledgement leaves the node; a
    /// failed sync is an internal error (the ack still goes out — the
    /// protocol must progress — but the node records that it is no
    /// longer crash-safe). Records the modeled device sync cost into
    /// the `wal.sync` histogram and — when the barrier belongs to a
    /// specific round — a [`Phase::WalSync`] trace event.
    fn wal_barrier(&mut self, key: &str, op: Option<OpId>) {
        let cost = self.store.sync_cost();
        self.tel.record("wal.sync", cost);
        if let Some(op) = op {
            let at = self.clock;
            self.tel.event(at, op, Phase::WalSync, cost.as_ns());
        }
        if !self.store.wal_sync() {
            self.tel.add("wal.sync_failed", 1);
            self.note_internal(KvError::WalFailed {
                key: key.to_owned(),
            });
        }
    }

    /// Advance the engine's view of the host clock (monotone).
    fn touch(&mut self, now: Time) {
        self.clock = self.clock.max(now);
    }

    /// The local object store (read-only inspection; mutation goes
    /// through the protocol methods).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable store access for tests and offline tooling. Adapter
    /// crates must not mutate the store directly (`layering` lint).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Observable counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Mutable counter access for the routing-dependent counters the
    /// adapter owns (`gets_served`, `forwarded`, …).
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// This engine's telemetry bundle (phase histograms + trace ring).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Mutable telemetry access for the adapter-owned instrumentation
    /// points (transport retransmits, routing decisions).
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.tel
    }

    /// The metrics snapshot: the live registry plus store/WAL facts
    /// (appends, syncs, object writes, bytes) folded in as counters so
    /// per-node snapshots merge into cluster totals by plain addition.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = self.tel.reg.clone();
        m.add("wal.appends", self.store.wal().appends());
        m.add("wal.syncs", self.store.wal().syncs());
        m.add("store.writes", self.store.writes());
        m.add("store.bytes_written", self.store.bytes_written());
        m
    }

    /// Most recent internal invariant violation, if any (a correct run
    /// keeps this `None`).
    pub fn last_internal_error(&self) -> Option<&KvError> {
        self.last_internal_error.as_ref()
    }

    /// Put rounds this node is currently coordinating whose key matches
    /// `filter`. A recovery drain must be ordered *after* these rounds:
    /// their replica group was fixed before the drain's requester joined
    /// the view, so a snapshot taken mid-round could miss their commit.
    pub fn in_flight(&self, filter: &dyn Fn(&str) -> bool) -> Vec<(String, OpId)> {
        self.coords
            .keys()
            .filter(|(k, _)| filter(k))
            .cloned()
            .collect()
    }

    /// Whether the coordination round for `(key, op)` is still open.
    pub fn coord_live(&self, key: &str, op: OpId) -> bool {
        self.coords.contains_key(&(key.to_owned(), op))
    }

    /// The commit timestamp of a still-open round, if it reached the
    /// commit decision. A retried put whose round is stuck in phase 2
    /// re-distributes this timestamp instead of minting a new one.
    pub fn round_commit_ts(&self, key: &str, op: OpId) -> Option<Timestamp> {
        self.coords.get(&(key.to_owned(), op)).and_then(|c| c.ts)
    }

    /// Has this attempt already been settled here — a commit with the
    /// same client and an equal-or-higher sequence applied locally? True
    /// means the put either committed (the reply was lost) or the client
    /// has long moved past it; a closed-loop client never has two
    /// attempts in flight, so answering `ok` to a settled retry is always
    /// correct and starting a fresh round for it never is.
    pub fn op_settled(&self, op: OpId) -> bool {
        self.client_floors
            .get(&op.client)
            .is_some_and(|&floor| floor >= op.client_seq)
    }

    /// Record an applied commit timestamp: advances the failover sequence
    /// floor and the per-client settled floor.
    fn note_commit_ts(&mut self, ts: Timestamp) {
        self.primary_seq = self.primary_seq.max(ts.primary_seq);
        let floor = self.client_floors.entry(ts.client).or_insert(0);
        *floor = (*floor).max(ts.client_seq);
    }

    /// Break the lock on `key` if its holder is provably stale relative
    /// to the incoming attempt `op`: an older attempt by the *same*
    /// client (closed-loop clients abandon an attempt before starting the
    /// next), or — when the engine runs with a `stale_lock_ttl` — any
    /// attempt whose lock went unrefreshed past the TTL. Aborting is safe
    /// in both cases: a held lock means the round never committed here,
    /// and a committed attempt's leftover lock releases without touching
    /// the committed value.
    fn break_stale_lock(&mut self, key: &str, op: OpId, now: Time) {
        let Some(p) = self.store.pending(key) else {
            return;
        };
        if p.op == op {
            return;
        }
        let same_client_older = p.op.client == op.client && p.op.client_seq < op.client_seq;
        let expired = self
            .cfg
            .stale_lock_ttl
            .is_some_and(|ttl| now >= p.locked_at + ttl);
        if same_client_older || expired {
            let old = p.op;
            self.store.abort(key, old, Time::MAX);
            self.coords.remove(&(key.to_owned(), old));
            self.started.remove(&(key.to_owned(), old));
            self.counters.puts_aborted += 1;
            self.tel.add("engine.stale_locks_broken", 1);
            self.tel.event(now, old, Phase::Abort, 0);
        }
    }

    /// Record an internal invariant violation instead of panicking: the
    /// affected operation is dropped (its client times out and retries)
    /// and the node keeps serving.
    pub fn note_internal(&mut self, err: KvError) {
        self.counters.internal_errors += 1;
        self.last_internal_error = Some(err);
    }

    /// Dispatch on the coordinator kind after new information arrived.
    fn advance(&mut self, key: &str, op: OpId, g: &Group, fx: &mut Vec<Effect>) {
        let kind = match self.coords.get(&(key.to_owned(), op)) {
            Some(c) => c.kind,
            None => return,
        };
        match kind {
            CoordKind::TwoPc => {
                self.check_commit(key, op, g, fx);
                self.check_done(key, op, g, fx);
            }
            CoordKind::Direct { quorum } => self.direct_advance(key, op, quorum, g, fx),
        }
    }

    /// All replicas hold the data and so does the coordinator: generate
    /// the timestamp quadruplet and distribute it.
    fn check_commit(&mut self, key: &str, op: OpId, g: &Group, fx: &mut Vec<Effect>) {
        let k = (key.to_owned(), op);
        let Some(c) = self.coords.get(&k) else {
            return;
        };
        if c.committed || !c.self_written {
            return;
        }
        if !g.peers.iter().all(|n| c.acks1.contains(n)) {
            return;
        }
        self.primary_seq += 1;
        let ts = Timestamp {
            primary_seq: self.primary_seq,
            primary: g.self_addr,
            client_seq: op.client_seq,
            client: op.client,
        };
        match self.coords.get_mut(&k) {
            Some(c) => {
                c.committed = true;
                c.ts = Some(ts);
            }
            None => return self.note_internal(KvError::CoordinatorMissing { key: k.0, op }),
        }
        // The coordinator applies its own commit at decision time
        // (Figure 3: the primary commits, *then* distributes the
        // timestamp message; re-delivery through the multicast loopback
        // is idempotent). Relying on the loopback alone would let a
        // lost self-delivery ack a put — the peers commit and ack2 —
        // that the primary itself never applied, after which the
        // primary serves stale gets for the key.
        if self.store.commit(key, op, ts) {
            self.counters.puts_committed += 1;
        }
        self.note_commit_ts(ts);
        self.wal_barrier(key, Some(op));
        let at = self.clock;
        if let Some(t0) = self.started.remove(&k) {
            self.tel
                .record("engine.lock_to_commit", at.saturating_sub(t0));
        }
        self.tel.event(at, op, Phase::Commit, ts.primary_seq);
        fx.push(Effect::Commit {
            key: key.to_owned(),
            op,
            ts,
        });
    }

    /// Every replica committed: retire the round and answer the client.
    fn check_done(&mut self, key: &str, op: OpId, g: &Group, fx: &mut Vec<Effect>) {
        let k = (key.to_owned(), op);
        let Some(c) = self.coords.get(&k) else {
            return;
        };
        if !c.committed {
            return;
        }
        if !g.peers.iter().all(|n| c.acks2.contains(n)) {
            return;
        }
        let (client, replied) = (c.client, c.replied);
        self.coords.remove(&k);
        self.started.remove(&k);
        if !replied {
            let at = self.clock;
            self.tel.event(at, op, Phase::Reply, 1);
            fx.push(Effect::Reply {
                client,
                op,
                ok: true,
            });
        }
        if self.cfg.inline_commit {
            self.drain(key, fx);
        }
    }

    /// Direct path: reply at quorum, retire once every peer acked.
    fn direct_advance(
        &mut self,
        key: &str,
        op: OpId,
        quorum: usize,
        g: &Group,
        fx: &mut Vec<Effect>,
    ) {
        let k = (key.to_owned(), op);
        let Some(c) = self.coords.get_mut(&k) else {
            return;
        };
        if !c.self_written {
            return;
        }
        // The local copy counts toward the quorum.
        let have = c.acks1.len() + 1;
        if have >= quorum && !c.replied {
            c.replied = true;
            let client = c.client;
            // The client-visible ack of the direct path: the local copy
            // it counts on must be on stable storage first.
            self.wal_barrier(key, Some(op));
            let at = self.clock;
            if let Some(&t0) = self.started.get(&k) {
                self.tel
                    .record("engine.lock_to_commit", at.saturating_sub(t0));
            }
            self.tel.event(at, op, Phase::Reply, 1);
            fx.push(Effect::Reply {
                client,
                op,
                ok: true,
            });
        }
        if let Some(c) = self.coords.get(&k) {
            if c.acks1.len() >= g.peers.len() {
                self.coords.remove(&k);
                self.started.remove(&k);
            }
        }
    }

    /// Give the next queued writer its turn once the lock is free.
    fn drain(&mut self, key: &str, fx: &mut Vec<Effect>) {
        if self.store.locked(key) {
            return;
        }
        if let Some(mut q) = self.waiting.remove(key) {
            if !q.is_empty() {
                let (op, value) = q.remove(0);
                if !q.is_empty() {
                    self.waiting.insert(key.to_owned(), q);
                }
                fx.push(Effect::Redrive {
                    key: key.to_owned(),
                    op,
                    value,
                });
            }
        }
    }
}

impl ReplicationEngine for TwoPcEngine {
    fn prepare(
        &mut self,
        key: &str,
        value: Value,
        op: OpId,
        now: Time,
        fx: &mut Vec<Effect>,
    ) -> bool {
        self.touch(now);
        self.break_stale_lock(key, op, now);
        if !self.store.lock(key, op, value.clone(), now) {
            // Locked by another op: queue behind it.
            let q = self.waiting.entry(key.to_owned()).or_default();
            if !q.iter().any(|(o, _)| *o == op) {
                q.push((op, value));
            }
            self.tel.add("engine.queued", 1);
            self.tel.event(now, op, Phase::Queued, 0);
            return false;
        }
        // +L (forced) then W: both on the storage device.
        let size = self.store.pending(key).map_or(0, |p| p.value.size());
        self.store.write_delay(now, 100, true);
        let done = self.store.write_delay(now, size, false);
        self.started.entry((key.to_owned(), op)).or_insert(now);
        self.tel.event(now, op, Phase::Lock, u64::from(size));
        fx.push(Effect::WriteDone {
            at: done,
            key: key.to_owned(),
            op,
        });
        true
    }

    fn accept(&mut self, key: &str, value: Value, op: OpId, now: Time, fx: &mut Vec<Effect>) {
        // Lock if free; a *live* conflict is left for the commit round to
        // resolve (the coordinator's timestamp decides), but a provably
        // stale holder is broken first so an abandoned attempt cannot
        // wedge the replica.
        self.touch(now);
        self.break_stale_lock(key, op, now);
        self.store.lock(key, op, value.clone(), now);
        self.store.write_delay(now, 100, true);
        let done = self.store.write_delay(now, value.size(), false);
        self.started.entry((key.to_owned(), op)).or_insert(now);
        self.tel
            .event(now, op, Phase::Lock, u64::from(value.size()));
        fx.push(Effect::WriteDone {
            at: done,
            key: key.to_owned(),
            op,
        });
    }

    fn coordinate(&mut self, key: &str, op: OpId, client: Ipv4, quorum: Option<usize>) {
        let k = (key.to_owned(), op);
        if self.coords.contains_key(&k) {
            return;
        }
        let kind = match quorum {
            Some(q) => CoordKind::Direct { quorum: q },
            None => CoordKind::TwoPc,
        };
        self.coords.insert(k, Coord::new(client, kind));
    }

    fn on_written(
        &mut self,
        key: &str,
        op: OpId,
        role: EngineRole<'_>,
        now: Time,
        fx: &mut Vec<Effect>,
    ) {
        self.touch(now);
        if let Some(&t0) = self.started.get(&(key.to_owned(), op)) {
            self.tel
                .record("engine.lock_to_write", now.saturating_sub(t0));
        }
        self.tel.event(now, op, Phase::Write, 0);
        let durable = self.cfg.durable_pending;
        match self.store.pending_mut(key) {
            Some(p) if p.op == op => {
                if durable {
                    p.written = true;
                }
            }
            // The attempt no longer holds the lock. Direct-path
            // coordinators never lock, and a settled attempt (its commit
            // already applied here) must still advance/ack so a stuck
            // round of a retried put can complete; anything else was
            // superseded or aborted meanwhile and is dropped.
            Some(_) | None => {
                let direct = matches!(
                    self.coords.get(&(key.to_owned(), op)).map(|c| c.kind),
                    Some(CoordKind::Direct { .. })
                );
                if !direct && !self.op_settled(op) {
                    return;
                }
            }
        }
        match role {
            EngineRole::Primary(g) => {
                let k = (key.to_owned(), op);
                if !self.coords.contains_key(&k) {
                    // NICE-style engines coordinate implicitly on the
                    // first primary-side event and arm the deadline.
                    let Some(t) = self.cfg.op_timeout else {
                        return;
                    };
                    self.coords
                        .insert(k.clone(), Coord::new(op.client, CoordKind::TwoPc));
                    fx.push(Effect::Deadline {
                        at: now + t,
                        key: key.to_owned(),
                        op,
                    });
                }
                match self.coords.get_mut(&k) {
                    Some(c) => c.self_written = true,
                    None => {
                        return self.note_internal(KvError::CoordinatorMissing { key: k.0, op })
                    }
                }
                self.advance(key, op, g, fx);
            }
            EngineRole::Peer => {
                // The ack vouches for the +L lock record: force it down
                // before telling the coordinator this replica holds it.
                self.wal_barrier(key, Some(op));
                fx.push(Effect::Ack1 {
                    key: key.to_owned(),
                    op,
                });
            }
            EngineRole::Observer => {}
        }
    }

    fn on_ack1(
        &mut self,
        key: &str,
        op: OpId,
        from: NodeIdx,
        g: &Group,
        now: Time,
        fx: &mut Vec<Effect>,
    ) {
        self.touch(now);
        if let Some(&t0) = self.started.get(&(key.to_owned(), op)) {
            self.tel
                .record("engine.lock_to_ack1", now.saturating_sub(t0));
        }
        self.tel.event(now, op, Phase::Ack1, u64::from(from.0));
        let k = (key.to_owned(), op);
        if !self.coords.contains_key(&k) {
            // An ack can outrun the primary's own write completion: a
            // deadline-running engine opens the record here (NICE); the
            // NOOB baseline only tracks explicitly coordinated puts.
            let Some(t) = self.cfg.op_timeout else {
                return;
            };
            self.coords
                .insert(k.clone(), Coord::new(op.client, CoordKind::TwoPc));
            fx.push(Effect::Deadline {
                at: now + t,
                key: key.to_owned(),
                op,
            });
        }
        match self.coords.get_mut(&k) {
            Some(c) => {
                c.acks1.insert(from);
            }
            None => return self.note_internal(KvError::CoordinatorMissing { key: k.0, op }),
        }
        self.advance(key, op, g, fx);
    }

    fn on_ack2(
        &mut self,
        key: &str,
        op: OpId,
        from: NodeIdx,
        g: Option<&Group>,
        fx: &mut Vec<Effect>,
    ) {
        let at = self.clock;
        self.tel.event(at, op, Phase::Ack2, u64::from(from.0));
        if let Some(c) = self.coords.get_mut(&(key.to_owned(), op)) {
            c.acks2.insert(from);
        }
        if let Some(g) = g {
            self.advance(key, op, g, fx);
        }
    }

    fn on_commit(
        &mut self,
        key: &str,
        op: OpId,
        ts: Timestamp,
        role: EngineRole<'_>,
        fx: &mut Vec<Effect>,
    ) -> bool {
        let applied = self.store.commit(key, op, ts);
        if applied {
            self.counters.puts_committed += 1;
        }
        // Track the failover sequence floor and the per-client settled
        // floor: the timestamp is a globally decided commit.
        self.note_commit_ts(ts);
        let at = self.clock;
        if let Some(t0) = self.started.remove(&(key.to_owned(), op)) {
            self.tel
                .record("engine.lock_to_commit", at.saturating_sub(t0));
        }
        self.tel.event(at, op, Phase::Commit, ts.primary_seq);
        match role {
            EngineRole::Primary(g) => self.check_done(key, op, g, fx),
            EngineRole::Peer => {
                // The ack vouches for the commit record: force it down
                // before the coordinator counts this replica committed.
                self.wal_barrier(key, Some(op));
                fx.push(Effect::Ack2 {
                    key: key.to_owned(),
                    op,
                });
            }
            EngineRole::Observer => {}
        }
        self.drain(key, fx);
        applied
    }

    fn on_abort(&mut self, key: &str, op: OpId, issued: Time, fx: &mut Vec<Effect>) -> bool {
        let applied = self.store.abort(key, op, issued);
        if applied {
            self.counters.puts_aborted += 1;
            self.started.remove(&(key.to_owned(), op));
            let at = self.clock;
            self.tel.event(at, op, Phase::Abort, 0);
        }
        self.drain(key, fx);
        applied
    }

    fn on_deadline(
        &mut self,
        key: &str,
        op: OpId,
        g: Option<&Group>,
        now: Time,
        fx: &mut Vec<Effect>,
    ) {
        self.touch(now);
        let k = (key.to_owned(), op);
        {
            let Some(c) = self.coords.get_mut(&k) else {
                return; // completed
            };
            c.timeouts += 1;
            self.tel.add("engine.deadlines", 1);
            self.tel
                .event(now, op, Phase::Deadline, u64::from(c.timeouts));
            if c.timeouts < 2 {
                if let Some(t) = self.cfg.op_timeout {
                    fx.push(Effect::Deadline {
                        at: now + t,
                        key: key.to_owned(),
                        op,
                    });
                }
                return;
            }
        }
        // Two timeouts: report the unresponsive members, abort, fail the
        // client (§4.4 "Failures during Put Operation").
        let Some(c) = self.coords.remove(&k) else {
            return self.note_internal(KvError::CoordinatorMissing { key: k.0, op });
        };
        let Some(g) = g else {
            return;
        };
        let acks = if c.committed { &c.acks2 } else { &c.acks1 };
        let missing: Vec<NodeIdx> = g
            .peers
            .iter()
            .copied()
            .filter(|n| !acks.contains(n))
            .collect();
        if !missing.is_empty() {
            fx.push(Effect::Unresponsive { members: missing });
        }
        if !c.committed {
            self.store.abort(key, op, Time::MAX);
            self.counters.puts_aborted += 1;
            self.started.remove(&(key.to_owned(), op));
            self.tel.add("engine.deadline_aborts", 1);
            self.tel.event(now, op, Phase::Abort, 0);
            fx.push(Effect::Abort {
                key: key.to_owned(),
                op,
                issued: now,
            });
            fx.push(Effect::Reply {
                client: c.client,
                op,
                ok: false,
            });
            self.drain(key, fx);
        }
    }

    fn next_ts(&mut self, op: OpId, self_addr: Ipv4) -> Timestamp {
        self.primary_seq += 1;
        Timestamp {
            primary_seq: self.primary_seq,
            primary: self_addr,
            client_seq: op.client_seq,
            client: op.client,
        }
    }

    fn apply_copy(&mut self, key: &str, value: Value, ts: Timestamp, now: Time) -> Time {
        self.touch(now);
        let done = self.store.write_delay(now, value.size(), true);
        self.store.commit_direct(key, value, ts);
        self.note_commit_ts(ts);
        self.counters.puts_committed += 1;
        // A directly applied copy is acked (or served) the moment this
        // returns: force it down now.
        let op = OpId {
            client: ts.client,
            client_seq: ts.client_seq,
        };
        self.wal_barrier(key, Some(op));
        self.tel.event(now, op, Phase::Commit, ts.primary_seq);
        done
    }

    fn stage_write(&mut self, now: Time, size: u32) -> Time {
        self.touch(now);
        self.store.write_delay(now, 100, true);
        self.store.write_delay(now, size, false)
    }

    fn sync_object(&mut self, key: &str, value: Value, ts: Timestamp) {
        self.store.commit_direct(key, value, ts);
        // A synced commit raises the sequence floors exactly like a live
        // one: a node that later becomes primary must never mint a
        // timestamp below a commit it already holds, or the acked value
        // silently loses to its own history.
        self.note_commit_ts(ts);
    }

    fn ingest(&mut self, now: Time, objects: Vec<(String, Value, Timestamp)>) {
        self.touch(now);
        let total: u32 = objects.iter().map(|(_, v, _)| v.size()).sum();
        self.store.write_delay(now, total, true);
        for (k, v, ts) in objects {
            // A synced commit also settles a lock this node still holds
            // for the same attempt: the commit message was lost while the
            // node was out of the replica group, and an orphaned lock
            // would otherwise trip the stale-lock sweep forever.
            self.store.release_if_committed(&k, ts);
            self.store.commit_direct(&k, v, ts);
            self.note_commit_ts(ts);
        }
        // One barrier for the whole drained batch.
        self.wal_barrier("<ingest>", None);
    }

    fn forget(&mut self, key: &str) {
        self.store.remove(key);
    }

    fn lock_report(
        &self,
        filter: &dyn Fn(&str) -> bool,
    ) -> (Vec<(String, OpId, Option<Timestamp>)>, u64) {
        let locked: Vec<(String, OpId, Option<Timestamp>)> = self
            .store
            .pending_iter()
            .filter(|(k, _)| filter(k))
            .map(|(k, p)| {
                // "committed" must mean THIS attempt committed somewhere,
                // not that some earlier version of the key exists.
                let cts = self
                    .store
                    .get(k)
                    .filter(|c| c.ts.client == p.op.client && c.ts.client_seq == p.op.client_seq)
                    .map(|c| c.ts);
                (k.clone(), p.op, cts)
            })
            .collect();
        (locked, self.primary_seq.max(self.store.max_primary_seq()))
    }

    fn observe_seq(&mut self, seq: u64) {
        self.primary_seq = self.primary_seq.max(seq);
    }

    fn coordinating(&self, key: &str, op: OpId) -> bool {
        self.coords.contains_key(&(key.to_owned(), op))
    }

    fn reset(&mut self) {
        self.store.on_crash();
        self.coords.clear();
        self.waiting.clear();
        // Rounds die with the process; their phase timers mean nothing
        // after a restart. The telemetry itself survives like the
        // counters do — a recovered node keeps its history.
        self.started.clear();
        // The settled floors are derived state: rebuild them from the
        // committed objects that survived the crash. Keeping stale
        // in-memory floors would let a restarted node answer `ok` for an
        // attempt whose commit never reached disk anywhere.
        self.rebuild_floors();
    }
}

/// Lock-resolution state on a freshly promoted primary (§4.4): "if the
/// object is committed on any secondary node … The primary will commit
/// and unlock the object. If an object is locked on all secondary nodes,
/// then the new primary will abort."
#[derive(Debug)]
pub struct LockResolution {
    waiting: BTreeSet<NodeIdx>,
    /// key -> (op, committed_ts anywhere?, lock count)
    locked: BTreeMap<String, (OpId, Option<Timestamp>, usize)>,
    max_seq: u64,
}

impl LockResolution {
    /// Start a resolution waiting on reports from `waiting`, seeded with
    /// the new primary's own [`ReplicationEngine::lock_report`].
    pub fn new(
        waiting: BTreeSet<NodeIdx>,
        seed: Vec<(String, OpId, Option<Timestamp>)>,
        max_seq: u64,
    ) -> LockResolution {
        let mut locked = BTreeMap::new();
        for (k, op, cts) in seed {
            locked.insert(k, (op, cts, 1));
        }
        LockResolution {
            waiting,
            locked,
            max_seq,
        }
    }

    /// Merge one member's lock report. Returns true once every awaited
    /// member reported.
    pub fn absorb(
        &mut self,
        from: NodeIdx,
        locked: Vec<(String, OpId, Option<Timestamp>)>,
        max_seq: u64,
    ) -> bool {
        self.max_seq = self.max_seq.max(max_seq);
        for (k, op, cts) in locked {
            let e = self.locked.entry(k).or_insert((op, None, 0));
            e.2 += 1;
            if let Some(t) = cts {
                e.1 = Some(e.1.map_or(t, |x: Timestamp| x.max(t)));
            }
        }
        self.waiting.remove(&from);
        self.complete()
    }

    /// Has every awaited member reported?
    pub fn complete(&self) -> bool {
        self.waiting.is_empty()
    }

    /// The verdicts: the sequence floor for the new primary, and per key
    /// the attempt plus `Some(ts)` (commit everywhere with `ts`) or
    /// `None` (locked everywhere, committed nowhere: abort).
    pub fn settle(self) -> (u64, Vec<(String, OpId, Option<Timestamp>)>) {
        let verdicts = self
            .locked
            .into_iter()
            .map(|(k, (op, cts, _count))| (k, op, cts))
            .collect();
        (self.max_seq, verdicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT: Ipv4 = Ipv4::new(10, 0, 1, 1);
    const OTHER_CLIENT: Ipv4 = Ipv4::new(10, 0, 1, 2);
    const PRIMARY: Ipv4 = Ipv4::new(10, 0, 0, 1);

    fn op(seq: u64) -> OpId {
        OpId {
            client: CLIENT,
            client_seq: seq,
        }
    }

    fn nice_cfg() -> EngineCfg {
        EngineCfg {
            storage: StorageCfg::default(),
            op_timeout: Some(Time::from_ms(500)),
            inline_commit: false,
            durable_pending: true,
            telemetry: TelemetryCfg::default(),
            stale_lock_ttl: None,
        }
    }

    fn noob_cfg() -> EngineCfg {
        EngineCfg {
            storage: StorageCfg::default(),
            op_timeout: None,
            inline_commit: true,
            durable_pending: false,
            telemetry: TelemetryCfg::default(),
            stale_lock_ttl: Some(Time::from_secs(3)),
        }
    }

    fn group(peers: &[u32]) -> Group {
        Group {
            peers: peers.iter().map(|&n| NodeIdx(n)).collect(),
            self_addr: PRIMARY,
        }
    }

    fn commit_effect(fx: &[Effect]) -> Option<Timestamp> {
        fx.iter().find_map(|e| match e {
            Effect::Commit { ts, .. } => Some(*ts),
            _ => None,
        })
    }

    #[test]
    fn nice_style_round_commits_at_decision_even_if_loopback_is_lost() {
        let mut e = TwoPcEngine::new(nice_cfg());
        let g = group(&[1, 2]);
        let mut fx = Vec::new();
        assert!(e.prepare("k", Value::from_bytes(vec![7]), op(1), Time::ZERO, &mut fx));
        assert!(matches!(fx[0], Effect::WriteDone { .. }));
        fx.clear();
        e.on_written("k", op(1), EngineRole::Primary(&g), Time::ZERO, &mut fx);
        assert!(
            matches!(fx[0], Effect::Deadline { .. }),
            "first primary event arms the deadline"
        );
        fx.clear();
        e.on_ack1("k", op(1), NodeIdx(1), &g, Time::ZERO, &mut fx);
        assert!(commit_effect(&fx).is_none(), "one ack short");
        e.on_ack1("k", op(1), NodeIdx(2), &g, Time::ZERO, &mut fx);
        let ts = commit_effect(&fx).expect("commit after all acks");
        assert_eq!(ts.primary, PRIMARY);
        // The primary's own copy is applied the moment the timestamp is
        // generated: a lost multicast loopback must never leave the
        // acked value missing from the primary's store.
        assert_eq!(*e.store().get("k").unwrap().value.bytes, vec![7]);
        assert_eq!(e.counters().puts_committed, 1);
        fx.clear();
        // The loopback re-delivery is a no-op (already applied).
        assert!(!e.on_commit("k", op(1), ts, EngineRole::Primary(&g), &mut fx));
        assert_eq!(e.counters().puts_committed, 1);
        fx.clear();
        e.on_ack2("k", op(1), NodeIdx(1), Some(&g), &mut fx);
        assert!(fx.is_empty());
        e.on_ack2("k", op(1), NodeIdx(2), Some(&g), &mut fx);
        assert!(
            matches!(fx[0], Effect::Reply { ok: true, .. }),
            "reply once every peer committed"
        );
        assert!(!e.coordinating("k", op(1)));
    }

    #[test]
    fn inline_engine_commits_at_timestamp_generation() {
        let mut e = TwoPcEngine::new(noob_cfg());
        let g = group(&[1]);
        let mut fx = Vec::new();
        assert!(e.prepare("k", Value::from_bytes(vec![9]), op(1), Time::ZERO, &mut fx));
        e.coordinate("k", op(1), CLIENT, None);
        fx.clear();
        e.on_written("k", op(1), EngineRole::Primary(&g), Time::ZERO, &mut fx);
        assert!(fx.is_empty(), "no deadline without op_timeout");
        e.on_ack1("k", op(1), NodeIdx(1), &g, Time::ZERO, &mut fx);
        assert!(commit_effect(&fx).is_some());
        assert_eq!(
            *e.store().get("k").unwrap().value.bytes,
            vec![9],
            "inline commit applied before the timestamp fan-out"
        );
        fx.clear();
        e.on_ack2("k", op(1), NodeIdx(1), Some(&g), &mut fx);
        assert!(matches!(fx[0], Effect::Reply { ok: true, .. }));
    }

    #[test]
    fn direct_path_replies_at_quorum_and_retires_when_full() {
        let mut e = TwoPcEngine::new(noob_cfg());
        let g = group(&[1, 2]);
        e.coordinate("k", op(1), CLIENT, Some(2));
        let ts = e.next_ts(op(1), PRIMARY);
        e.apply_copy("k", Value::from_bytes(vec![1]), ts, Time::ZERO);
        let mut fx = Vec::new();
        e.on_written("k", op(1), EngineRole::Primary(&g), Time::ZERO, &mut fx);
        assert!(fx.is_empty(), "self copy alone is below quorum 2");
        e.on_ack1("k", op(1), NodeIdx(1), &g, Time::ZERO, &mut fx);
        assert!(matches!(fx[0], Effect::Reply { ok: true, .. }));
        assert!(e.coordinating("k", op(1)), "still waiting for the tail ack");
        fx.clear();
        e.on_ack1("k", op(1), NodeIdx(2), &g, Time::ZERO, &mut fx);
        assert!(fx.is_empty(), "no second reply");
        assert!(!e.coordinating("k", op(1)));
    }

    #[test]
    fn second_deadline_aborts_and_fails_the_client() {
        let mut e = TwoPcEngine::new(nice_cfg());
        let g = group(&[1, 2]);
        let mut fx = Vec::new();
        e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx);
        fx.clear();
        e.on_written("k", op(1), EngineRole::Primary(&g), Time::ZERO, &mut fx);
        fx.clear();
        e.on_deadline("k", op(1), Some(&g), Time::from_ms(500), &mut fx);
        assert!(matches!(fx[0], Effect::Deadline { .. }), "first re-arms");
        fx.clear();
        e.on_deadline("k", op(1), Some(&g), Time::from_secs(1), &mut fx);
        assert!(matches!(&fx[0], Effect::Unresponsive { members } if members.len() == 2));
        assert!(matches!(fx[1], Effect::Abort { .. }));
        assert!(matches!(fx[2], Effect::Reply { ok: false, .. }));
        assert!(!e.store().locked("k"), "lock released");
        assert_eq!(e.counters().puts_aborted, 1);
    }

    #[test]
    fn stale_abort_does_not_tear_down_a_retried_round() {
        // A coordinator gives up on a round (double deadline) and its
        // Abort multicast is delayed in the network — e.g. trapped by a
        // partition. The client retries the SAME op; the retry re-locks
        // everywhere and the new round reaches commit. The old abort
        // surfacing mid-round must not release the re-taken locks, or
        // the commit finds nothing to apply and the acked value is lost.
        let mut e = TwoPcEngine::new(nice_cfg());
        let mut fx = Vec::new();
        // Attempt 1 lands on a peer at t=100ms.
        e.accept(
            "k",
            Value::from_bytes(vec![1]),
            op(1),
            Time::from_ms(100),
            &mut fx,
        );
        // The coordinator decided to abort at t=300ms (message delayed).
        // Meanwhile the retry re-locks the same op at t=500ms.
        e.accept(
            "k",
            Value::from_bytes(vec![1]),
            op(1),
            Time::from_ms(500),
            &mut fx,
        );
        fx.clear();
        // The stale abort finally arrives: dropped.
        assert!(
            !e.on_abort("k", op(1), Time::from_ms(300), &mut fx),
            "abort older than the live lock is ignored"
        );
        assert!(e.store().locked("k"), "the retried round keeps its lock");
        // The retried round's commit applies normally.
        let ts = Timestamp {
            primary_seq: 1,
            primary: PRIMARY,
            client_seq: 1,
            client: CLIENT,
        };
        assert!(e.on_commit("k", op(1), ts, EngineRole::Observer, &mut fx));
        assert_eq!(*e.store().get("k").unwrap().value.bytes, vec![1]);
        // A current abort (issued after the lock) still works.
        e.accept(
            "k",
            Value::from_bytes(vec![2]),
            op(2),
            Time::from_secs(2),
            &mut fx,
        );
        assert!(e.on_abort("k", op(2), Time::from_secs(3), &mut fx));
        assert!(!e.store().locked("k"));
    }

    #[test]
    fn conflicting_writer_queues_and_redrives() {
        let mut e = TwoPcEngine::new(nice_cfg());
        let mut fx = Vec::new();
        // Conflicting writers are different clients: a newer op from the
        // *same* client supersedes the old lock instead of queueing.
        assert!(e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx));
        let rival = OpId {
            client: OTHER_CLIENT,
            client_seq: 2,
        };
        assert!(!e.prepare("k", Value::from_bytes(vec![2]), rival, Time::ZERO, &mut fx));
        fx.clear();
        let ts = Timestamp {
            primary_seq: 1,
            primary: PRIMARY,
            client_seq: 1,
            client: CLIENT,
        };
        e.on_commit("k", op(1), ts, EngineRole::Observer, &mut fx);
        let redrive = fx
            .iter()
            .any(|e| matches!(e, Effect::Redrive { op: o, .. } if o.client_seq == 2));
        assert!(redrive, "queued writer gets its turn after the commit");
    }

    #[test]
    fn newer_attempt_from_same_client_breaks_abandoned_lock() {
        let mut e = TwoPcEngine::new(nice_cfg());
        let mut fx = Vec::new();
        assert!(e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx));
        // The client gave up on op 1 and moved to op 2 (closed-loop
        // clients never have two attempts in flight): the orphan lock
        // must not block the client's own next put forever.
        assert!(
            e.prepare(
                "k",
                Value::from_bytes(vec![2]),
                op(2),
                Time::from_ms(1),
                &mut fx
            ),
            "newer attempt from the same client supersedes the orphan"
        );
        assert_eq!(e.store().pending("k").unwrap().op, op(2));
        assert_eq!(e.counters().puts_aborted, 1);
    }

    #[test]
    fn ttl_breaks_stale_cross_client_lock() {
        let mut e = TwoPcEngine::new(noob_cfg()); // 3 s stale-lock TTL
        let mut fx = Vec::new();
        assert!(e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx));
        let rival = OpId {
            client: OTHER_CLIENT,
            client_seq: 1,
        };
        assert!(
            !e.prepare(
                "k",
                Value::from_bytes(vec![2]),
                rival,
                Time::from_secs(2),
                &mut fx
            ),
            "within the TTL the holder may still be live"
        );
        assert!(
            e.prepare(
                "k",
                Value::from_bytes(vec![2]),
                rival,
                Time::from_secs(4),
                &mut fx
            ),
            "past the TTL the orphan is broken"
        );
        assert_eq!(e.store().pending("k").unwrap().op, rival);
    }

    #[test]
    fn retry_refreshes_lock_age() {
        let mut e = TwoPcEngine::new(noob_cfg());
        let mut fx = Vec::new();
        assert!(e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx));
        // The holder's client retried at 2 s: the lock is live again.
        assert!(e.prepare(
            "k",
            Value::from_bytes(vec![1]),
            op(1),
            Time::from_secs(2),
            &mut fx
        ));
        let rival = OpId {
            client: OTHER_CLIENT,
            client_seq: 1,
        };
        assert!(
            !e.prepare(
                "k",
                Value::from_bytes(vec![2]),
                rival,
                Time::from_secs(4),
                &mut fx
            ),
            "TTL counts from the last refresh, not the first lock"
        );
    }

    #[test]
    fn settled_floor_covers_committed_and_older_attempts() {
        let mut e = TwoPcEngine::new(nice_cfg());
        let mut fx = Vec::new();
        e.prepare("k", Value::from_bytes(vec![1]), op(3), Time::ZERO, &mut fx);
        let ts = Timestamp {
            primary_seq: 1,
            primary: PRIMARY,
            client_seq: 3,
            client: CLIENT,
        };
        e.on_commit("k", op(3), ts, EngineRole::Observer, &mut fx);
        assert!(e.op_settled(op(3)), "the committed attempt is settled");
        assert!(e.op_settled(op(2)), "older attempts from the client too");
        assert!(!e.op_settled(op(4)), "future attempts are not");
        let other = OpId {
            client: OTHER_CLIENT,
            client_seq: 1,
        };
        assert!(!e.op_settled(other), "floors are per client");
        // The floor is derived from durable state: a crash rebuilds it.
        e.reset();
        assert!(
            e.op_settled(op(3)),
            "floor survives via the committed object"
        );
    }

    #[test]
    fn settled_peer_still_acks_a_retried_round() {
        let mut e = TwoPcEngine::new(nice_cfg());
        let mut fx = Vec::new();
        e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx);
        let ts = Timestamp {
            primary_seq: 1,
            primary: PRIMARY,
            client_seq: 1,
            client: CLIENT,
        };
        e.on_commit("k", op(1), ts, EngineRole::Observer, &mut fx);
        fx.clear();
        // A retry of the already-committed attempt writes again (the
        // primary never saw our ack): the peer must still ack1 so the
        // round can complete, even though the pending state is gone.
        e.on_written("k", op(1), EngineRole::Peer, Time::ZERO, &mut fx);
        assert!(
            matches!(fx[0], Effect::Ack1 { .. }),
            "settled attempt acks instead of going silent"
        );
    }

    #[test]
    fn committed_round_exposes_its_timestamp() {
        let mut e = TwoPcEngine::new(noob_cfg());
        let g = group(&[1, 2]);
        let mut fx = Vec::new();
        e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx);
        e.coordinate("k", op(1), CLIENT, None);
        e.on_written("k", op(1), EngineRole::Primary(&g), Time::ZERO, &mut fx);
        assert!(e.round_commit_ts("k", op(1)).is_none(), "not yet decided");
        e.on_ack1("k", op(1), NodeIdx(1), &g, Time::ZERO, &mut fx);
        e.on_ack1("k", op(1), NodeIdx(2), &g, Time::ZERO, &mut fx);
        let ts = e.round_commit_ts("k", op(1)).expect("decided");
        assert_eq!(ts, commit_effect(&fx).unwrap());
        // Phase 2 completes: the record retires and the getter goes dark.
        e.on_ack2("k", op(1), NodeIdx(1), Some(&g), &mut fx);
        e.on_ack2("k", op(1), NodeIdx(2), Some(&g), &mut fx);
        assert!(e.round_commit_ts("k", op(1)).is_none());
    }

    #[test]
    fn lock_report_matches_attempt_not_key_history() {
        let mut e = TwoPcEngine::new(nice_cfg());
        let mut fx = Vec::new();
        // op 1 commits, then op 2 locks the same key.
        e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx);
        let ts = Timestamp {
            primary_seq: 1,
            primary: PRIMARY,
            client_seq: 1,
            client: CLIENT,
        };
        e.on_commit("k", op(1), ts, EngineRole::Observer, &mut fx);
        e.prepare("k", Value::from_bytes(vec![2]), op(2), Time::ZERO, &mut fx);
        let (locked, max_seq) = e.lock_report(&|_| true);
        assert_eq!(locked.len(), 1);
        assert_eq!(locked[0].1, op(2));
        assert!(
            locked[0].2.is_none(),
            "op 1's commit must not vouch for op 2's lock"
        );
        assert_eq!(max_seq, 1);
    }

    #[test]
    fn resolution_commits_anywhere_aborts_everywhere() {
        let seed = vec![("a".to_owned(), op(1), None), ("b".to_owned(), op(2), None)];
        let mut r = LockResolution::new([NodeIdx(1), NodeIdx(2)].into(), seed, 3);
        let cts = Timestamp {
            primary_seq: 9,
            primary: PRIMARY,
            client_seq: 1,
            client: CLIENT,
        };
        assert!(!r.absorb(NodeIdx(1), vec![("a".to_owned(), op(1), Some(cts))], 9));
        assert!(r.absorb(NodeIdx(2), vec![("b".to_owned(), op(2), None)], 0));
        let (max_seq, verdicts) = r.settle();
        assert_eq!(max_seq, 9);
        assert_eq!(
            verdicts,
            vec![
                ("a".to_owned(), op(1), Some(cts)),
                ("b".to_owned(), op(2), None),
            ]
        );
    }

    #[test]
    fn reset_keeps_sequence_floor_and_committed_objects() {
        let mut e = TwoPcEngine::new(nice_cfg());
        let mut fx = Vec::new();
        e.prepare("k", Value::from_bytes(vec![1]), op(1), Time::ZERO, &mut fx);
        let ts = e.next_ts(op(1), PRIMARY);
        e.on_commit("k", op(1), ts, EngineRole::Observer, &mut fx);
        e.prepare("x", Value::from_bytes(vec![2]), op(2), Time::ZERO, &mut fx);
        e.coordinate("x", op(2), CLIENT, None);
        e.reset();
        assert!(e.store().get("k").is_some(), "committed survives");
        assert!(!e.store().locked("x"), "unwritten pending is volatile");
        assert!(!e.coordinating("x", op(2)));
        assert_eq!(e.next_ts(op(3), PRIMARY).primary_seq, 2, "floor kept");
    }
}

//! Client-observed histories and a per-key linearizability checker.
//!
//! The chaos harness records every operation a client *invoked* and what
//! it *observed* (value, not-found, timeout), then asks: is there a
//! single total order of the operations on each key that (a) respects
//! real time — an op that completed before another was invoked must be
//! ordered first — and (b) is legal for a register: every read returns
//! the latest preceding write, or nothing if there is none? This is
//! Wing–Gong linearizability [Wing & Gong, JPDC '93] restricted to
//! independent per-key put/get registers, which is exactly the
//! consistency NICE claims in §3.3/§4.4 (two-phase commit per object,
//! gets hidden from rejoining replicas until catch-up completes).
//!
//! Failed operations need care:
//!
//! - A put that timed out or was rejected is **indeterminate**: some
//!   earlier attempt may still have committed (a coordinator that
//!   committed but lost the reply re-drives the same timestamped value
//!   on retry). Such a put *may* be linearized at any point from its
//!   invocation onward — or never. It is an *optional* op with an
//!   open-ended effect window.
//! - A put still in flight when the run ends is likewise optional.
//! - A get that observed NotFound is a real observation: it read the
//!   initial (absent) register state and is mandatory.
//! - A get that timed out or was still in flight observed nothing and
//!   constrains nothing; it is dropped at ingestion.
//!
//! The checker runs an exhaustive DFS over per-key linearization orders
//! with memoization on (set of applied ops, last written value). Keys
//! are independent registers, so the search is per key and stays small
//! as long as workloads keep per-key op counts modest (≤ 128 per key).

use std::collections::BTreeMap;
use std::fmt;

use node_rt::{Ipv4, Time};

use crate::client::{ClientCore, ClientOp, OpRecord};
use crate::error::KvError;

/// How many ops a single key may carry before the checker refuses
/// (the DFS bitmask is a `u128`).
pub const MAX_OPS_PER_KEY: usize = 128;

/// What an operation definitely did, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed successfully: it must appear in the linearization.
    Ok,
    /// A get that observed NotFound: a mandatory read of the initial
    /// (absent) register value.
    NotFound,
    /// A put whose fate is unknown (timed out, rejected, or still in
    /// flight at the end of the run): it may take effect at any point
    /// after its invocation, or never.
    Maybe,
}

/// One operation in a client-observed history.
#[derive(Debug, Clone)]
pub struct HistoryOp {
    /// The invoking client.
    pub client: Ipv4,
    /// The client's sequence number for the op.
    pub seq: u64,
    /// Put or get?
    pub is_put: bool,
    /// The key (its own independent register).
    pub key: String,
    /// Invocation time.
    pub invoke: Time,
    /// Completion time; `None` for ops whose effect window never closed
    /// (indeterminate puts — they may take effect arbitrarily late).
    pub complete: Option<Time>,
    /// Put: the bytes written. Get: the bytes observed (`None` =
    /// NotFound).
    pub bytes: Option<Vec<u8>>,
    /// The op's definite outcome class.
    pub outcome: Outcome,
}

impl HistoryOp {
    /// Must this op appear in any linearization?
    fn mandatory(&self) -> bool {
        self.outcome != Outcome::Maybe
    }
}

/// Why a history fails to linearize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A get observed a value no put on that key ever wrote.
    PhantomRead,
    /// A get observed NotFound after a put was already acknowledged:
    /// the register can never return to "absent".
    StaleRead,
    /// No per-key linearization order exists (the general case the DFS
    /// rules out).
    Unlinearizable,
}

/// A machine-readable linearizability violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The key whose register history is broken.
    pub key: String,
    /// The client that observed the violation.
    pub client: Ipv4,
    /// That client's sequence number for the offending op.
    pub seq: u64,
    /// The violation class.
    pub kind: ViolationKind,
    /// Human-readable description with the evidence.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} key={:?} client={} seq={}: {}",
            self.kind, self.key, self.client, self.seq, self.detail
        )
    }
}

/// A client-observed history over many keys, with the checker.
#[derive(Debug, Default)]
pub struct History {
    /// All recorded operations, in ingestion order.
    pub ops: Vec<HistoryOp>,
}

impl History {
    /// An empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Append one operation.
    pub fn push(&mut self, op: HistoryOp) {
        self.ops.push(op);
    }

    /// Absorb another history's operations (used by harnesses that build
    /// per-client fragments in separate node threads — `History` is
    /// `Send`, a live [`ClientCore`] is not).
    pub fn merge(&mut self, other: History) {
        self.ops.extend(other.ops);
    }

    /// Ingest everything one client observed: its completion records and
    /// (if the run ended with an op still in flight) the open put.
    ///
    /// Timed-out gets and in-flight gets observed nothing and are
    /// dropped; timed-out/rejected/open puts become [`Outcome::Maybe`].
    pub fn record_client(&mut self, client: Ipv4, core: &ClientCore) {
        for r in &core.records {
            if let Some(op) = Self::classify(client, r) {
                self.ops.push(op);
            }
        }
        if let Some((ClientOp::Put { key, value }, id, start, _attempts)) = core.inflight_detail() {
            self.ops.push(HistoryOp {
                client,
                seq: id.client_seq,
                is_put: true,
                key: key.clone(),
                invoke: start,
                complete: None,
                bytes: Some(value.bytes.as_ref().clone()),
                outcome: Outcome::Maybe,
            });
        }
    }

    fn classify(client: Ipv4, r: &OpRecord) -> Option<HistoryOp> {
        let (outcome, complete, bytes) = if r.is_put {
            match &r.result {
                Ok(()) => (Outcome::Ok, Some(r.end), r.bytes.clone()),
                // A failed put may still have taken effect (an earlier
                // attempt can commit after the client gave up), so its
                // window stays open past `end`.
                Err(_) => (Outcome::Maybe, None, r.bytes.clone()),
            }
        } else {
            match &r.result {
                Ok(()) => (
                    Outcome::Ok,
                    Some(r.end),
                    Some(r.bytes.clone().unwrap_or_default()),
                ),
                Err(KvError::NotFound { .. }) => (Outcome::NotFound, Some(r.end), None),
                // A get that timed out observed nothing; it constrains
                // nothing and is dropped.
                Err(_) => return None,
            }
        };
        Some(HistoryOp {
            client,
            seq: r.seq,
            is_put: r.is_put,
            key: r.key.clone(),
            invoke: r.start,
            complete,
            bytes,
            outcome,
        })
    }

    /// Group ops by key (keys are independent registers).
    fn by_key(&self) -> BTreeMap<&str, Vec<&HistoryOp>> {
        let mut map: BTreeMap<&str, Vec<&HistoryOp>> = BTreeMap::new();
        for op in &self.ops {
            map.entry(op.key.as_str()).or_default().push(op);
        }
        map
    }

    /// Check every key's history; an empty result means the whole
    /// history linearizes.
    pub fn check(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (key, ops) in self.by_key() {
            check_key(key, &ops, &mut out);
        }
        out
    }

    /// A deterministic one-line-per-op rendering (sorted by invocation
    /// time, then client, then seq). Two same-seed chaos runs must
    /// produce byte-identical renders.
    pub fn render(&self) -> String {
        let mut ops: Vec<&HistoryOp> = self.ops.iter().collect();
        ops.sort_by_key(|o| (o.invoke, o.client.0, o.seq));
        let mut s = String::new();
        for o in ops {
            let kind = if o.is_put { "put" } else { "get" };
            let end = match o.complete {
                Some(t) => format!("{}", t.as_ns()),
                None => "open".to_string(),
            };
            let val = match &o.bytes {
                Some(b) => String::from_utf8_lossy(b).into_owned(),
                None => "-".to_string(),
            };
            s.push_str(&format!(
                "{} {} seq={} {} key={} val={} end={} {:?}\n",
                o.invoke.as_ns(),
                o.client,
                o.seq,
                kind,
                o.key,
                val,
                end,
                o.outcome,
            ));
        }
        s
    }

    /// Successful operations (for non-vacuity assertions in tests).
    pub fn ok_count(&self) -> usize {
        self.ops.iter().filter(|o| o.outcome == Outcome::Ok).count()
    }
}

/// Check one key's register history, appending any violations.
fn check_key(key: &str, ops: &[&HistoryOp], out: &mut Vec<Violation>) {
    // Cheap targeted pre-checks first: they pin the offending op and
    // give far better diagnostics than a bare DFS failure.
    let before = out.len();
    phantom_reads(key, ops, out);
    stale_nil_reads(key, ops, out);
    if out.len() > before {
        // The key is already known-broken; the DFS would only restate it.
        return;
    }
    if ops.len() > MAX_OPS_PER_KEY {
        out.push(Violation {
            key: key.to_owned(),
            client: Ipv4(0),
            seq: 0,
            kind: ViolationKind::Unlinearizable,
            detail: format!(
                "{} ops on one key exceeds the checker's {} cap; \
                 shrink the per-key workload",
                ops.len(),
                MAX_OPS_PER_KEY
            ),
        });
        return;
    }
    if !linearizes(ops) {
        let culprit = ops
            .iter()
            .filter(|o| o.mandatory())
            .max_by_key(|o| o.invoke)
            .map_or((Ipv4(0), 0), |o| (o.client, o.seq));
        out.push(Violation {
            key: key.to_owned(),
            client: culprit.0,
            seq: culprit.1,
            kind: ViolationKind::Unlinearizable,
            detail: format!(
                "no valid linearization order exists for the {} ops on this key",
                ops.len()
            ),
        });
    }
}

/// A successful get must return bytes some put on the same key wrote.
fn phantom_reads(key: &str, ops: &[&HistoryOp], out: &mut Vec<Violation>) {
    for o in ops {
        if o.is_put || o.outcome != Outcome::Ok {
            continue;
        }
        let Some(seen) = &o.bytes else { continue };
        let written = ops
            .iter()
            .any(|p| p.is_put && p.bytes.as_ref() == Some(seen));
        if !written {
            out.push(Violation {
                key: key.to_owned(),
                client: o.client,
                seq: o.seq,
                kind: ViolationKind::PhantomRead,
                detail: format!(
                    "get observed {:?}, which no put on this key ever wrote",
                    String::from_utf8_lossy(seen)
                ),
            });
        }
    }
}

/// Once any put is acknowledged, the register can never read as absent
/// again (there are no deletes): a NotFound get invoked after a
/// successful put completed is a definite stale read.
fn stale_nil_reads(key: &str, ops: &[&HistoryOp], out: &mut Vec<Violation>) {
    let first_ack = ops
        .iter()
        .filter(|p| p.is_put && p.outcome == Outcome::Ok)
        .filter_map(|p| p.complete)
        .min();
    let Some(first_ack) = first_ack else { return };
    for o in ops {
        if !o.is_put && o.outcome == Outcome::NotFound && o.invoke > first_ack {
            out.push(Violation {
                key: key.to_owned(),
                client: o.client,
                seq: o.seq,
                kind: ViolationKind::StaleRead,
                detail: format!(
                    "get invoked at {} observed NotFound, but a put was already \
                     acknowledged at {}",
                    o.invoke.as_ns(),
                    first_ack.as_ns()
                ),
            });
        }
    }
}

/// Wing–Gong DFS over one key: does any linearization order exist?
///
/// State: the set of already-linearized ops (bitmask) and the index of
/// the last linearized put (the register value). An op is *enabled* when
/// every not-yet-linearized op that completed strictly before its
/// invocation is... none — i.e. nothing unscheduled must precede it in
/// real time. Mandatory ops must all be scheduled; `Maybe` puts may be
/// scheduled (taking effect) or simply left out.
fn linearizes(ops: &[&HistoryOp]) -> bool {
    let all_mandatory: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.mandatory())
        .fold(0u128, |m, (i, _)| m | (1u128 << i));
    // Memoized states: (scheduled set, register index). `usize::MAX`
    // encodes the initial (absent) register.
    let mut seen = std::collections::BTreeSet::new();
    let mut stack: Vec<(u128, usize)> = vec![(0u128, usize::MAX)];
    while let Some((mask, last)) = stack.pop() {
        if mask & all_mandatory == all_mandatory {
            return true;
        }
        if !seen.insert((mask, last)) {
            continue;
        }
        // Runaway guard: a pathological history (very wide concurrency)
        // could explode the state space. Give up without fabricating a
        // violation — in practice concurrency per key is a handful of
        // clients and the frontier keeps the space tiny.
        if seen.len() > 4_000_000 {
            return true;
        }
        // The real-time frontier: an op may go next only if no other
        // unscheduled op's completion precedes its invocation.
        let min_res = ops
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1u128 << i) == 0)
            .filter_map(|(_, o)| o.complete)
            .min();
        for (i, o) in ops.iter().enumerate() {
            if mask & (1u128 << i) != 0 {
                continue;
            }
            if let Some(frontier) = min_res {
                if o.invoke > frontier {
                    continue; // something unscheduled must come first
                }
            }
            if o.is_put {
                stack.push((mask | (1u128 << i), i));
            } else {
                // A get must observe the current register value.
                let register = if last == usize::MAX {
                    None
                } else {
                    ops[last].bytes.as_ref()
                };
                let legal = match o.outcome {
                    Outcome::NotFound => register.is_none(),
                    _ => register.is_some() && register == o.bytes.as_ref(),
                };
                if legal {
                    stack.push((mask | (1u128 << i), last));
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const C1: Ipv4 = Ipv4::new(10, 0, 1, 1);
    const C2: Ipv4 = Ipv4::new(10, 0, 1, 2);

    #[expect(clippy::too_many_arguments, reason = "test constructor")]
    fn op(
        client: Ipv4,
        seq: u64,
        is_put: bool,
        key: &str,
        invoke: u64,
        complete: Option<u64>,
        bytes: Option<&str>,
        outcome: Outcome,
    ) -> HistoryOp {
        HistoryOp {
            client,
            seq,
            is_put,
            key: key.to_owned(),
            invoke: Time::from_ms(invoke),
            complete: complete.map(Time::from_ms),
            bytes: bytes.map(|s| s.as_bytes().to_vec()),
            outcome,
        }
    }

    fn put(c: Ipv4, seq: u64, k: &str, inv: u64, res: u64, v: &str) -> HistoryOp {
        op(c, seq, true, k, inv, Some(res), Some(v), Outcome::Ok)
    }

    fn get(c: Ipv4, seq: u64, k: &str, inv: u64, res: u64, v: &str) -> HistoryOp {
        op(c, seq, false, k, inv, Some(res), Some(v), Outcome::Ok)
    }

    fn get_nil(c: Ipv4, seq: u64, k: &str, inv: u64, res: u64) -> HistoryOp {
        op(c, seq, false, k, inv, Some(res), None, Outcome::NotFound)
    }

    fn maybe_put(c: Ipv4, seq: u64, k: &str, inv: u64, v: &str) -> HistoryOp {
        op(c, seq, true, k, inv, None, Some(v), Outcome::Maybe)
    }

    fn check(ops: Vec<HistoryOp>) -> Vec<Violation> {
        let mut h = History::new();
        for o in ops {
            h.push(o);
        }
        h.check()
    }

    #[test]
    fn sequential_register_history_linearizes() {
        let v = check(vec![
            get_nil(C1, 1, "k", 0, 1),
            put(C1, 2, "k", 2, 3, "a"),
            get(C2, 1, "k", 4, 5, "a"),
            put(C2, 2, "k", 6, 7, "b"),
            get(C1, 3, "k", 8, 9, "b"),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn concurrent_puts_allow_either_order() {
        // Both puts overlap; the get sees whichever "won".
        let v = check(vec![
            put(C1, 1, "k", 0, 10, "a"),
            put(C2, 1, "k", 1, 9, "b"),
            get(C1, 2, "k", 11, 12, "a"),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn phantom_read_is_flagged() {
        let v = check(vec![
            put(C1, 1, "k", 0, 1, "a"),
            get(C2, 1, "k", 2, 3, "zz"),
        ]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::PhantomRead);
        assert_eq!(v[0].client, C2);
    }

    #[test]
    fn stale_nil_read_is_flagged() {
        let v = check(vec![put(C1, 1, "k", 0, 1, "a"), get_nil(C2, 1, "k", 5, 6)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::StaleRead);
    }

    #[test]
    fn read_inversion_is_unlinearizable() {
        // The put is still in flight when one reader already sees it and
        // a later reader does not: new-then-old value order can never
        // linearize, and neither pre-check catches it (the put completes
        // after both gets).
        let v = check(vec![
            put(C1, 1, "k", 0, 100, "a"),
            get(C2, 1, "k", 2, 3, "a"),
            get_nil(C2, 2, "k", 4, 5),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::Unlinearizable);
    }

    #[test]
    fn maybe_put_may_take_effect() {
        // The timed-out put's value is visible: legal, it may have
        // committed.
        let v = check(vec![
            put(C1, 1, "k", 0, 1, "a"),
            maybe_put(C1, 2, "k", 2, "b"),
            get(C2, 1, "k", 10, 11, "b"),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn maybe_put_may_also_never_take_effect() {
        let v = check(vec![
            put(C1, 1, "k", 0, 1, "a"),
            maybe_put(C1, 2, "k", 2, "b"),
            get(C2, 1, "k", 10, 11, "a"),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn value_resurrection_after_maybe_put_is_flagged() {
        // Once "b" (the maybe put) is observed, a later read of "a" means
        // the register went b -> a with no put of "a" in between.
        let v = check(vec![
            put(C1, 1, "k", 0, 1, "a"),
            maybe_put(C1, 2, "k", 2, "b"),
            get(C2, 1, "k", 10, 11, "b"),
            get(C2, 2, "k", 12, 13, "a"),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::Unlinearizable);
    }

    #[test]
    fn keys_are_independent_registers() {
        let v = check(vec![
            put(C1, 1, "x", 0, 1, "a"),
            put(C1, 2, "y", 2, 3, "b"),
            get(C2, 1, "x", 4, 5, "a"),
            get(C2, 2, "y", 6, 7, "b"),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut h = History::new();
        h.push(put(C2, 1, "k", 5, 6, "b"));
        h.push(put(C1, 1, "k", 0, 1, "a"));
        let r1 = h.render();
        assert!(r1.find("val=a") < r1.find("val=b"), "{r1}");
        assert_eq!(r1, h.render());
    }
}

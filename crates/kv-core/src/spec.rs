//! The system-agnostic half of the layered cluster configuration.
//!
//! Every deployment in this workspace — NICE or NOOB, simulated or on
//! the real UDP runtime — is described by the same three layers:
//!
//! 1. [`ClusterSpec`] (this module): what the *cluster* is, independent
//!    of system and host — node counts, replication, partitioning, the
//!    storage device model, client retry/deadline behaviour, and the
//!    [`TelemetryCfg`] threaded into every engine and client.
//! 2. A host config owned by the host crate: `SimHostCfg` (links,
//!    switch, fault plan, client start time) for the simulator,
//!    `UdpHostCfg` (WAL root, socket nemesis) for the threaded runtime.
//! 3. A system config owned by the system crate: NICE's `KvConfig`
//!    (vrings, timers, put mode), NOOB's access/mode knobs.
//!
//! The split keeps A/B experiments honest: handing the *same*
//! `ClusterSpec` to both systems guarantees they differ only in the
//! layers above it.

use crate::client::RetryPolicy;
use crate::store::StorageCfg;
use crate::telemetry::TelemetryCfg;
use node_rt::Time;

/// System- and host-agnostic description of a cluster deployment.
///
/// Construct with [`ClusterSpec::new`] and override fields directly;
/// the struct is plain data — there is no builder.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Determinism seed (per-host RNG streams derive from it).
    pub seed: u64,
    /// Storage node count.
    pub nodes: usize,
    /// Spare nodes deployed idle, available for admin replacement.
    pub spares: usize,
    /// Replication level R.
    pub replication: usize,
    /// Hash partition count; `None` picks the deployment default
    /// (node count rounded up to a power of two, at least 16).
    pub partitions: Option<u32>,
    /// Storage device model (write bandwidth, op latency).
    pub storage: StorageCfg,
    /// Client retry schedule override. `None` keeps the system default
    /// (NICE: the `KvConfig` policy; NOOB: fixed 2 s simulated, 500 ms
    /// on the real runtime).
    pub retry: Option<RetryPolicy>,
    /// Clients retry `NotFound` gets with a short backoff.
    pub retry_not_found: bool,
    /// Total per-operation deadline: a retry firing past this budget
    /// fails the op with `Timeout` instead of burning the whole attempt
    /// budget. `None` = attempts only.
    pub op_deadline: Option<Time>,
    /// Telemetry configuration threaded into every engine and client.
    pub telemetry: TelemetryCfg,
}

impl ClusterSpec {
    /// A spec for `nodes` storage nodes at replication `replication`,
    /// with the deployment defaults used throughout the workspace.
    pub fn new(nodes: usize, replication: usize) -> ClusterSpec {
        ClusterSpec {
            seed: 42,
            nodes,
            spares: 0,
            replication,
            partitions: None,
            storage: StorageCfg::default(),
            retry: None,
            retry_not_found: false,
            op_deadline: None,
            telemetry: TelemetryCfg::default(),
        }
    }

    /// The effective partition count: the explicit override, or the
    /// deployment default (nodes rounded up to a power of two, min 16).
    pub fn partition_count(&self) -> u32 {
        self.partitions
            .unwrap_or_else(|| (self.nodes.next_power_of_two() as u32).max(16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_default_rounds_up_to_power_of_two_min_16() {
        assert_eq!(ClusterSpec::new(3, 2).partition_count(), 16);
        assert_eq!(ClusterSpec::new(15, 3).partition_count(), 16);
        assert_eq!(ClusterSpec::new(17, 3).partition_count(), 32);
        let mut s = ClusterSpec::new(3, 2);
        s.partitions = Some(64);
        assert_eq!(s.partition_count(), 64);
    }

    #[test]
    fn defaults_are_plain() {
        let s = ClusterSpec::new(8, 3);
        assert_eq!(s.seed, 42);
        assert_eq!(s.spares, 0);
        assert!(s.retry.is_none());
        assert!(s.op_deadline.is_none());
        assert!(!s.retry_not_found);
        assert!(s.telemetry.enabled);
    }
}

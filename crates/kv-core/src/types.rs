//! Identity and value types shared by every layer of both systems, plus
//! the CPU cost model both storage stacks are calibrated to.

use std::rc::Rc;

use node_rt::{Ipv4, Time};

/// Index of a storage node (dense, assigned by the cluster builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub u32);

/// A partition number in `0..num_partitions`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

/// A stored value. Benchmarks move multi-megabyte objects, so the value
/// carries real bytes *plus* a logical padding size: tests use real bytes
/// (`pad = 0`), benchmarks use empty bytes with `pad = object size`. All
/// transfer-time accounting uses [`Value::size`].
#[derive(Debug, Clone)]
pub struct Value {
    /// Actual bytes (asserted on in tests).
    pub bytes: Rc<Vec<u8>>,
    /// Additional logical bytes (benchmark payload padding).
    pub pad: u32,
}

impl Value {
    /// A value from real bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Value {
        Value {
            bytes: Rc::new(bytes),
            pad: 0,
        }
    }

    /// A synthetic value of `size` logical bytes.
    pub fn synthetic(size: u32) -> Value {
        Value {
            bytes: Rc::new(Vec::new()),
            pad: size,
        }
    }

    /// Logical size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32 + self.pad
    }
}

/// The put-ordering timestamp of §4.3: "The timestamp contains the
/// following quadruplet: primary address, primary timestamp, client
/// address, and client timestamp. The timestamp creates an order between
/// put operations to the same object, even between retrials of the put
/// operation by the same client."
///
/// Ordering is lexicographic on `(primary_seq, primary, client_seq,
/// client)`: a primary's sequence number advances per commit, so commits
/// by one primary are totally ordered; across primary failovers the new
/// primary continues from a higher sequence (it learns the floor during
/// lock resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// The committing primary's sequence number.
    pub primary_seq: u64,
    /// The committing primary's address.
    pub primary: Ipv4,
    /// The client's per-operation sequence number.
    pub client_seq: u64,
    /// The client's address.
    pub client: Ipv4,
}

/// Identifies one client put attempt (used to dedupe retries and to pair
/// acks with pending operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId {
    /// Client address.
    pub client: Ipv4,
    /// Client sequence number.
    pub client_seq: u64,
}

/// Approximate wire size of small protocol messages (acks, queries).
pub const CTRL_MSG_BYTES: u32 = 64;
/// App-level CPU cost of serving one client request (parse, hash, index,
/// buffer management, reply serialization). Calibrated to a Swift-class
/// 2017 storage stack (§6: "NOOB-RAG performance was equivalent or
/// slightly better than Swift storage").
pub const REQ_COST: Time = Time::from_us(300);
/// App-level CPU cost of handling one small protocol/control message
/// (acks, timestamps, membership).
pub const CTRL_COST: Time = Time::from_us(15);
/// App-level CPU cost of *sending* one value-carrying message (socket
/// write, stack traversal, segmentation). This is what makes a NOOB
/// primary that fans out R-1 object copies a CPU hotspot as well as a
/// network one (Figures 7 and 12).
pub const DATA_SEND_COST: Time = Time::from_us(100);
/// Messages larger than this pay [`DATA_SEND_COST`] on send.
pub const DATA_SEND_THRESHOLD: u32 = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_sizes() {
        assert_eq!(Value::from_bytes(vec![1, 2, 3]).size(), 3);
        assert_eq!(Value::synthetic(1 << 20).size(), 1 << 20);
        let v = Value {
            bytes: Rc::new(vec![0; 10]),
            pad: 5,
        };
        assert_eq!(v.size(), 15);
    }

    #[test]
    fn timestamp_total_order() {
        let a = Timestamp {
            primary_seq: 1,
            primary: Ipv4::new(10, 0, 0, 1),
            client_seq: 5,
            client: Ipv4::new(10, 0, 1, 1),
        };
        let mut b = a;
        b.primary_seq = 2;
        assert!(b > a, "later primary seq wins");
        let mut c = a;
        c.client_seq = 6;
        assert!(c > a, "same primary seq: later client attempt wins");
        // retry of the same client op through a different primary
        let mut d = a;
        d.primary = Ipv4::new(10, 0, 0, 2);
        assert_ne!(d, a);
        assert!(d != a, "total order");
    }
}

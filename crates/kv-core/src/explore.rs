//! Deterministic schedule exploration with dynamic partial-order
//! reduction (DPOR).
//!
//! The interleaving checkers enumerate every schedule of a set of
//! concurrent protocol operations against the production
//! [`TwoPcEngine`](crate::TwoPcEngine). Exhaustive enumeration is
//! factorial; most schedules are equivalent — swapping two adjacent
//! steps that touch disjoint state cannot change any observable
//! outcome. This module explores exactly **one schedule per
//! Mazurkiewicz trace-equivalence class** and *proves* the coverage
//! arithmetic as it goes:
//!
//! * [`Footprint`] — a step's read/write sets over up to 64 abstract
//!   state regions, observed dynamically at execution time (the model
//!   reports what a step actually touched, not what it syntactically
//!   could touch).
//! * [`Model`] — the system under exploration: a fixed set of
//!   processes, each a program-ordered sequence of steps; `Clone`
//!   forks the state so the explorer can branch.
//! * [`Explorer`] — sleep-set depth-first search. Every process is
//!   always enabled in these models (a step is a message delivery that
//!   never blocks), so sleep sets alone visit exactly the
//!   lexicographically-least member of every class: after exploring
//!   the subtree below step `p`, `p` is put to sleep, and any later
//!   sibling subtree re-exploring an order equivalent to one already
//!   seen is pruned.
//! * [`Schedule`] / [`Choice`] — the typed schedule encoding shared by
//!   the explorer, the legacy lexicographic sweeps
//!   ([`Schedule::enumerate`] / [`Schedule::rank`]), and chaos-plan
//!   replay rendering ([`ChaosPlan::schedule`](crate::ChaosPlan::schedule)).
//!
//! **Coverage proof.** For every explored class the explorer computes
//! the exact number of schedules in that class — the linear extensions
//! of the trace's happens-before partial order, built from vector
//! clocks over the dependence relation. The sum over all classes must
//! equal the multinomial count of the full schedule space
//! ([`Schedule::space`]); callers assert this, which proves the
//! exploration is an exactly-once partition of the space without ever
//! running it exhaustively. See DESIGN.md §11 for the soundness
//! argument.

use std::collections::BTreeMap;

/// A step's read/write footprint over at most 64 abstract state
/// regions.
///
/// What a region *is* belongs to the model: the 2PC interleaving
/// checker uses one region per replica; finer-grained models can use
/// one per (replica, key). Two steps are *dependent* (their order can
/// matter) when one's writes intersect the other's reads or writes —
/// see [`conflict_dependence`]. A write subsumes a read of the same
/// region for conflict purposes, so models only need to record reads
/// for regions they did not also write.
///
/// Over-approximating a footprint (recording a region a step did not
/// really touch) is always sound — it only splits equivalence classes
/// finer. Under-approximating is not: a missed dependence lets the
/// explorer prune a schedule whose outcome differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    reads: u64,
    writes: u64,
}

impl Footprint {
    /// The footprint of a step that touched nothing shared.
    pub const EMPTY: Footprint = Footprint {
        reads: 0,
        writes: 0,
    };

    /// A footprint reading only `region`.
    #[must_use]
    pub fn read(region: usize) -> Footprint {
        let mut f = Footprint::EMPTY;
        f.add_read(region);
        f
    }

    /// A footprint writing only `region`.
    #[must_use]
    pub fn write(region: usize) -> Footprint {
        let mut f = Footprint::EMPTY;
        f.add_write(region);
        f
    }

    /// Record a read of `region` (0..64).
    pub fn add_read(&mut self, region: usize) {
        assert!(region < 64, "footprint region out of range");
        self.reads |= 1 << region;
    }

    /// Record a write of `region` (0..64).
    pub fn add_write(&mut self, region: usize) {
        assert!(region < 64, "footprint region out of range");
        self.writes |= 1 << region;
    }

    /// The union of two footprints (a step made of both accesses).
    #[must_use]
    pub fn union(self, other: Footprint) -> Footprint {
        Footprint {
            reads: self.reads | other.reads,
            writes: self.writes | other.writes,
        }
    }

    /// The read-region bitmask.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// The write-region bitmask.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Do the two footprints conflict (write/write or read/write
    /// overlap on any region)?
    #[must_use]
    pub fn conflicts(&self, other: &Footprint) -> bool {
        (self.writes & (other.reads | other.writes)) != 0 || (other.writes & self.reads) != 0
    }
}

/// A dependence relation over observed footprints: `true` when the two
/// steps must keep their relative order (swapping them could change an
/// observable outcome).
///
/// Pluggable so tests can demonstrate that a *wrong* relation (one
/// that claims commutativity it does not have) makes the explorer miss
/// seeded protocol mutants the sound relation catches.
pub type DepFn = fn(&Footprint, &Footprint) -> bool;

/// The sound dependence relation: steps are dependent iff their
/// footprints [`conflict`](Footprint::conflicts).
#[must_use]
pub fn conflict_dependence(a: &Footprint, b: &Footprint) -> bool {
    a.conflicts(b)
}

// ---------------------------------------------------------------------
// Typed schedules
// ---------------------------------------------------------------------

/// What one schedule position does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChoiceKind {
    /// Deliver the next program-order step of process `actor`.
    Step,
    /// Drop the message the next step of `actor` would have delivered.
    Drop,
    /// Deliver the next step of `actor` twice (a retry raced the
    /// original).
    Dup,
    /// Crash node `actor`.
    Crash,
    /// Restart node `actor`.
    Restart,
    /// Isolate node `actor` from the network.
    Isolate,
    /// Heal node `actor`'s isolation.
    Heal,
    /// Crash the metadata controller (`actor` unused, 0).
    MetaCrash,
    /// Add node `actor` to the membership.
    AddNode,
    /// Remove node `actor` from the membership.
    RemoveNode,
}

impl ChoiceKind {
    /// One-character tag used by [`Choice::render`].
    fn tag(self) -> char {
        match self {
            ChoiceKind::Step => 's',
            ChoiceKind::Drop => '-',
            ChoiceKind::Dup => '+',
            ChoiceKind::Crash => '!',
            ChoiceKind::Restart => '^',
            ChoiceKind::Isolate => '/',
            ChoiceKind::Heal => '~',
            ChoiceKind::MetaCrash => 'M',
            ChoiceKind::AddNode => 'a',
            ChoiceKind::RemoveNode => 'r',
        }
    }
}

/// One position of a [`Schedule`]: a kind plus the process/node it
/// acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Choice {
    /// What happens.
    pub kind: ChoiceKind,
    /// Which process (for [`ChoiceKind::Step`]/`Drop`/`Dup`) or node
    /// (for the fault kinds) it happens to.
    pub actor: u32,
}

impl Choice {
    /// A plain protocol step of process `actor`.
    #[must_use]
    pub fn step(actor: usize) -> Choice {
        Choice {
            kind: ChoiceKind::Step,
            actor: actor as u32,
        }
    }

    /// A crash of node `actor`.
    #[must_use]
    pub fn crash(actor: usize) -> Choice {
        Choice {
            kind: ChoiceKind::Crash,
            actor: actor as u32,
        }
    }

    /// The compact stable rendering, e.g. `s0` (step of process 0) or
    /// `!2` (crash of node 2).
    #[must_use]
    pub fn render(&self) -> String {
        format!("{}{}", self.kind.tag(), self.actor)
    }
}

/// A typed schedule: the ordered choices of one execution.
///
/// Replaces the ad-hoc `&[usize]` / lexicographic-index encodings the
/// interleaving sweeps used to pass around. Step-only schedules over a
/// fixed per-process step budget form a multiset-permutation space
/// with exact counting ([`space`](Schedule::space)), lexicographic
/// ranking ([`rank`](Schedule::rank) / [`from_rank`](Schedule::from_rank))
/// and bounded enumeration ([`enumerate`](Schedule::enumerate)).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Schedule {
    choices: Vec<Choice>,
}

impl Schedule {
    /// The empty schedule.
    #[must_use]
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// A schedule made of the given choices.
    #[must_use]
    pub fn from_choices(choices: Vec<Choice>) -> Schedule {
        Schedule { choices }
    }

    /// A step-only schedule from a sequence of process indices.
    #[must_use]
    pub fn steps(actors: &[usize]) -> Schedule {
        Schedule {
            choices: actors.iter().map(|&a| Choice::step(a)).collect(),
        }
    }

    /// Append a choice.
    pub fn push(&mut self, c: Choice) {
        self.choices.push(c);
    }

    /// Remove and return the last choice.
    pub fn pop(&mut self) -> Option<Choice> {
        self.choices.pop()
    }

    /// Number of choices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Is the schedule empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// The choices in order.
    #[must_use]
    pub fn choices(&self) -> &[Choice] {
        &self.choices
    }

    /// The actor of every [`ChoiceKind::Step`] choice, in order — the
    /// legacy `&[usize]` encoding, for model drivers.
    #[must_use]
    pub fn step_actors(&self) -> Vec<usize> {
        self.choices
            .iter()
            .filter(|c| c.kind == ChoiceKind::Step)
            .map(|c| c.actor as usize)
            .collect()
    }

    /// The byte-stable rendering: space-separated [`Choice::render`]
    /// tags, e.g. `s0 s0 s1 !0 s1`.
    #[must_use]
    pub fn render(&self) -> String {
        self.choices
            .iter()
            .map(Choice::render)
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The size of the step-only schedule space where process `p` has
    /// `counts[p]` steps: the multinomial `(Σcounts)! / Π counts[p]!`.
    #[must_use]
    pub fn space(counts: &[usize]) -> u128 {
        // Product of binomials C(placed_so_far + c, c) stays integral
        // at every intermediate step, unlike the factorial quotient.
        let mut total: u128 = 1;
        let mut placed: u128 = 0;
        for &c in counts {
            for i in 1..=c as u128 {
                placed += 1;
                total = total * placed / i;
            }
        }
        total
    }

    /// The lexicographic rank (0-based) of this step-only schedule in
    /// the `counts` space; `None` if the schedule has non-step choices
    /// or does not use exactly the given step budget.
    #[must_use]
    pub fn rank(&self, counts: &[usize]) -> Option<u128> {
        let mut rem: Vec<usize> = counts.to_vec();
        let mut rank: u128 = 0;
        for c in &self.choices {
            if c.kind != ChoiceKind::Step {
                return None;
            }
            let a = c.actor as usize;
            if a >= rem.len() || rem[a] == 0 {
                return None;
            }
            for (b, rb) in rem.iter().enumerate().take(a) {
                if *rb > 0 {
                    let mut sub = rem.clone();
                    sub[b] -= 1;
                    rank += Schedule::space(&sub);
                }
            }
            rem[a] -= 1;
        }
        if rem.iter().any(|&r| r != 0) {
            return None;
        }
        Some(rank)
    }

    /// The step-only schedule at lexicographic `rank` in the `counts`
    /// space; `None` when `rank >= space(counts)`.
    #[must_use]
    pub fn from_rank(counts: &[usize], mut rank: u128) -> Option<Schedule> {
        if rank >= Schedule::space(counts) {
            return None;
        }
        let total: usize = counts.iter().sum();
        let mut rem: Vec<usize> = counts.to_vec();
        let mut sched = Schedule::new();
        for _ in 0..total {
            for a in 0..rem.len() {
                if rem[a] == 0 {
                    continue;
                }
                let mut sub = rem.clone();
                sub[a] -= 1;
                let below = Schedule::space(&sub);
                if rank < below {
                    sched.push(Choice::step(a));
                    rem = sub;
                    break;
                }
                rank -= below;
            }
        }
        Some(sched)
    }

    /// Enumerate step-only schedules of the `counts` space in
    /// lexicographic order, stopping after `cap` schedules. Returns
    /// how many `f` saw.
    pub fn enumerate(counts: &[usize], cap: u128, f: &mut impl FnMut(&Schedule)) -> u128 {
        fn rec(
            rem: &mut [usize],
            sched: &mut Schedule,
            total: usize,
            cap: u128,
            count: &mut u128,
            f: &mut impl FnMut(&Schedule),
        ) {
            if *count >= cap {
                return;
            }
            if sched.len() == total {
                f(sched);
                *count += 1;
                return;
            }
            for a in 0..rem.len() {
                if rem[a] == 0 {
                    continue;
                }
                rem[a] -= 1;
                sched.push(Choice::step(a));
                rec(rem, sched, total, cap, count, f);
                sched.pop();
                rem[a] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        let mut rem = counts.to_vec();
        let mut sched = Schedule::new();
        let mut count = 0;
        rec(&mut rem, &mut sched, total, cap, &mut count, f);
        count
    }
}

// ---------------------------------------------------------------------
// The exploration model
// ---------------------------------------------------------------------

/// A system the explorer can drive: a fixed set of processes, each a
/// program-ordered sequence of steps. Steps never block — any process
/// with remaining steps can always take its next one (message
/// deliveries in the 2PC checker have this shape) — which is what
/// makes sleep sets alone a complete reduction.
pub trait Model: Clone {
    /// Number of processes. Process indices are `0..procs()`.
    fn procs(&self) -> usize;

    /// Steps process `p` has left. `0` means `p` is finished.
    fn remaining(&self, p: usize) -> usize;

    /// Execute the next step of process `p`, returning the footprint
    /// it was *observed* to touch. The footprint must cover every
    /// shared region the step read (anything its behavior depended
    /// on) or wrote (anything a later step could observe).
    fn step(&mut self, p: usize) -> Footprint;
}

/// What the explorer shows the visitor at each point of the search.
pub enum Visit<'a, M> {
    /// A DFS node: the state after `schedule`, which is the
    /// lexicographically-least representative of its *prefix* trace
    /// class. Every node is visited exactly once per class, including
    /// the root (empty schedule) and complete leaves — this is the
    /// hook for grafting continuations (e.g. crash-at-this-point
    /// failover runs) onto every reachable prefix class.
    /// `class_size` is the number of schedules in the prefix class,
    /// or `None` unless [`Explorer::prefix_sizes`] is on.
    Prefix {
        /// The model state after the prefix ran.
        state: &'a M,
        /// The prefix schedule (class representative).
        schedule: &'a Schedule,
        /// Schedules in this prefix class (`None` = not computed).
        class_size: Option<u128>,
    },
    /// A complete schedule — one per Mazurkiewicz class of the full
    /// space. `class_size` is always computed (it feeds the coverage
    /// sum in [`ExploreStats`]).
    Complete {
        /// The final model state.
        state: &'a M,
        /// The complete schedule (class representative).
        schedule: &'a Schedule,
        /// Number of schedules in this class.
        class_size: u128,
    },
}

/// Byte-stable statistics of one exploration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Complete schedules executed — one per equivalence class.
    pub classes: u64,
    /// Σ class sizes: schedules *covered*. Callers assert this equals
    /// [`Schedule::space`] of the model, proving the classes partition
    /// the space exactly once.
    pub covered: u128,
    /// DFS nodes visited (prefix classes, including root and leaves).
    pub nodes: u64,
    /// Steps executed (DFS edges).
    pub steps: u64,
    /// Children skipped because their process was asleep — schedules
    /// whose class was already covered from an earlier sibling.
    pub prunes: u64,
    /// Smallest class size seen (0 when no class was).
    pub class_min: u128,
    /// Largest class size seen.
    pub class_max: u128,
    /// Length of a complete schedule.
    pub depth: usize,
}

impl ExploreStats {
    /// The one-line byte-stable rendering, identical across runs of
    /// the same model + relation.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "dpor: classes={} covered={} nodes={} steps={} prunes={} depth={} class-min={} class-max={}",
            self.classes,
            self.covered,
            self.nodes,
            self.steps,
            self.prunes,
            self.depth,
            self.class_min,
            self.class_max,
        )
    }
}

/// Sleep-set DPOR explorer over a [`Model`].
///
/// Children of every node are explored in ascending process order;
/// after a child's subtree is done its process goes to sleep for the
/// later siblings, and wakes below a sibling only when that sibling's
/// step is dependent with it. With always-enabled processes this
/// visits exactly the lexicographically-least linearization of every
/// trace class (DESIGN.md §11).
pub struct Explorer {
    dependent: DepFn,
    prefix_sizes: bool,
}

impl Explorer {
    /// An explorer over the given dependence relation — use
    /// [`conflict_dependence`] unless deliberately testing a wrong
    /// relation.
    #[must_use]
    pub fn new(dependent: DepFn) -> Explorer {
        Explorer {
            dependent,
            prefix_sizes: false,
        }
    }

    /// Also compute the class size of every *prefix* node (passed to
    /// [`Visit::Prefix`]); costs one counting pass per node.
    #[must_use]
    pub fn prefix_sizes(mut self, on: bool) -> Explorer {
        self.prefix_sizes = on;
        self
    }

    /// Run the exploration from `root`, invoking `visit` at every
    /// node, and return the run statistics.
    pub fn run<M: Model>(&self, root: &M, mut visit: impl FnMut(Visit<'_, M>)) -> ExploreStats {
        let procs = root.procs();
        let depth = (0..procs).map(|p| root.remaining(p)).sum();
        let mut stats = ExploreStats {
            classes: 0,
            covered: 0,
            nodes: 0,
            steps: 0,
            prunes: 0,
            class_min: 0,
            class_max: 0,
            depth,
        };
        let mut trace: Vec<TraceEvent> = Vec::with_capacity(depth);
        let mut sched = Schedule::new();
        self.dfs(
            root.clone(),
            Vec::new(),
            &mut trace,
            &mut sched,
            &mut stats,
            &mut visit,
        );
        stats
    }

    fn dfs<M: Model>(
        &self,
        state: M,
        sleep: Vec<(usize, Footprint)>,
        trace: &mut Vec<TraceEvent>,
        sched: &mut Schedule,
        stats: &mut ExploreStats,
        visit: &mut impl FnMut(Visit<'_, M>),
    ) {
        let procs = state.procs();
        stats.nodes += 1;
        let prefix_size = self.prefix_sizes.then(|| linear_extensions(trace, procs));
        visit(Visit::Prefix {
            state: &state,
            schedule: sched,
            class_size: prefix_size,
        });
        if (0..procs).all(|p| state.remaining(p) == 0) {
            let size = prefix_size.unwrap_or_else(|| linear_extensions(trace, procs));
            stats.classes += 1;
            stats.covered += size;
            stats.class_min = if stats.class_min == 0 {
                size
            } else {
                stats.class_min.min(size)
            };
            stats.class_max = stats.class_max.max(size);
            visit(Visit::Complete {
                state: &state,
                schedule: sched,
                class_size: size,
            });
            return;
        }
        let mut slept = sleep;
        for p in 0..procs {
            if state.remaining(p) == 0 {
                continue;
            }
            if slept.iter().any(|&(q, _)| q == p) {
                stats.prunes += 1;
                continue;
            }
            let mut child = state.clone();
            let fp = child.step(p);
            stats.steps += 1;
            // The new event's vector clock: join of every
            // happens-before predecessor (same process, or dependent
            // footprints), then its own program-order index.
            let mut clock = vec![0usize; procs];
            let mut own = 0usize;
            for ev in trace.iter() {
                if ev.proc == p {
                    own += 1;
                }
                if ev.proc == p || (self.dependent)(&ev.fp, &fp) {
                    for (c, e) in clock.iter_mut().zip(&ev.clock) {
                        *c = (*c).max(*e);
                    }
                }
            }
            clock[p] = own + 1;
            trace.push(TraceEvent { proc: p, fp, clock });
            sched.push(Choice::step(p));
            // A sleeping process stays asleep below `p` only if its
            // step is independent of `p`'s; a dependent one wakes (its
            // orders relative to `p` are genuinely different).
            let child_sleep: Vec<(usize, Footprint)> = slept
                .iter()
                .filter(|(_, fq)| !(self.dependent)(fq, &fp))
                .copied()
                .collect();
            self.dfs(child, child_sleep, trace, sched, stats, visit);
            sched.pop();
            trace.pop();
            slept.push((p, fp));
        }
    }
}

struct TraceEvent {
    proc: usize,
    fp: Footprint,
    /// `clock[q]` = number of `q`-events that must precede this event
    /// (for `q == proc`, its own 1-based program-order index).
    clock: Vec<usize>,
}

/// Count the linear extensions of a trace's happens-before partial
/// order — the exact number of schedules in its equivalence class.
///
/// Dynamic program over per-process progress tuples: a state is how
/// many events of each process have been placed; event `(p, i)` can be
/// placed when every process `q` has already placed `clock[q]` events.
fn linear_extensions(trace: &[TraceEvent], procs: usize) -> u128 {
    let mut counts = vec![0usize; procs];
    // Per-process clocks in program order.
    let mut req: Vec<Vec<&[usize]>> = vec![Vec::new(); procs];
    for ev in trace {
        counts[ev.proc] += 1;
        req[ev.proc].push(&ev.clock);
    }
    let mut layer: BTreeMap<Vec<usize>, u128> = BTreeMap::new();
    layer.insert(vec![0usize; procs], 1);
    for _ in 0..trace.len() {
        let mut next: BTreeMap<Vec<usize>, u128> = BTreeMap::new();
        for (progress, ways) in &layer {
            for p in 0..procs {
                let i = progress[p];
                if i >= counts[p] {
                    continue;
                }
                let clock = req[p][i];
                let ready = (0..procs).all(|q| q == p || progress[q] >= clock[q]);
                if !ready {
                    continue;
                }
                let mut adv = progress.clone();
                adv[p] += 1;
                *next.entry(adv).or_insert(0) += ways;
            }
        }
        layer = next;
    }
    layer.values().sum()
}

/// The greedy lexicographically-least linearization of an executed
/// schedule's trace: at every position, take the smallest process
/// whose next event has all its happens-before predecessors placed.
/// Exploration visits exactly these normal forms, so
/// `normal_form(σ) ∈ explored` for every schedule σ — the test-side
/// exactness check on small spaces.
#[must_use]
pub fn normal_form(actors: &[usize], fps: &[Footprint], dependent: DepFn) -> Schedule {
    let procs = actors.iter().copied().max().map_or(0, |m| m + 1);
    // Vector clocks of every event, in executed order.
    let mut clocks: Vec<Vec<usize>> = Vec::with_capacity(actors.len());
    let mut seen = vec![0usize; procs];
    for (i, (&p, fp)) in actors.iter().zip(fps).enumerate() {
        let mut clock = vec![0usize; procs];
        for (j, (&q, fq)) in actors.iter().zip(fps).enumerate().take(i) {
            if q == p || dependent(fq, fp) {
                for (c, e) in clock.iter_mut().zip(&clocks[j]) {
                    *c = (*c).max(*e);
                }
            }
        }
        seen[p] += 1;
        clock[p] = seen[p];
        clocks.push(clock);
    }
    // Per-process event clocks in program order.
    let mut req: Vec<Vec<&[usize]>> = vec![Vec::new(); procs];
    for (&p, clock) in actors.iter().zip(&clocks) {
        req[p].push(clock);
    }
    let mut progress = vec![0usize; procs];
    let mut out = Schedule::new();
    for _ in 0..actors.len() {
        let p = (0..procs)
            .find(|&p| {
                let i = progress[p];
                i < req[p].len() && (0..procs).all(|q| q == p || progress[q] >= req[p][i][q])
            })
            .expect("happens-before order has a linearization");
        progress[p] += 1;
        out.push(Choice::step(p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A scripted toy model: each process emits a fixed footprint
    /// sequence and owns no other state.
    #[derive(Clone)]
    struct Toy {
        script: Vec<Vec<Footprint>>,
        done: Vec<usize>,
    }

    impl Toy {
        fn new(script: Vec<Vec<Footprint>>) -> Toy {
            let done = vec![0; script.len()];
            Toy { script, done }
        }
    }

    impl Model for Toy {
        fn procs(&self) -> usize {
            self.script.len()
        }
        fn remaining(&self, p: usize) -> usize {
            self.script[p].len() - self.done[p]
        }
        fn step(&mut self, p: usize) -> Footprint {
            let fp = self.script[p][self.done[p]];
            self.done[p] += 1;
            fp
        }
    }

    fn explore_toy(toy: &Toy) -> (ExploreStats, Vec<Schedule>) {
        let mut reps = Vec::new();
        let stats = Explorer::new(conflict_dependence).run(toy, |v| {
            if let Visit::Complete { schedule, .. } = v {
                reps.push(schedule.clone());
            }
        });
        (stats, reps)
    }

    #[test]
    fn footprint_conflicts() {
        let w0 = Footprint::write(0);
        let r0 = Footprint::read(0);
        let w1 = Footprint::write(1);
        let r1 = Footprint::read(1);
        assert!(w0.conflicts(&w0), "write/write same region");
        assert!(w0.conflicts(&r0) && r0.conflicts(&w0), "read/write");
        assert!(!r0.conflicts(&r0), "read/read never conflicts");
        assert!(!w0.conflicts(&w1) && !w0.conflicts(&r1), "disjoint regions");
        let both = w0.union(r1);
        assert!(both.conflicts(&w1), "union carries the read");
    }

    #[test]
    fn independent_pair_explores_one_class() {
        let toy = Toy::new(vec![vec![Footprint::write(0)], vec![Footprint::write(1)]]);
        let (stats, reps) = explore_toy(&toy);
        assert_eq!(stats.classes, 1);
        assert_eq!(stats.covered, 2, "the one class holds both schedules");
        assert_eq!(stats.prunes, 1, "the second-order sibling slept");
        assert_eq!(reps, vec![Schedule::steps(&[0, 1])], "lex-least rep");
    }

    #[test]
    fn dependent_pair_explores_both_orders() {
        let toy = Toy::new(vec![vec![Footprint::write(0)], vec![Footprint::write(0)]]);
        let (stats, reps) = explore_toy(&toy);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.covered, 2);
        assert_eq!(stats.prunes, 0);
        assert_eq!(
            reps,
            vec![Schedule::steps(&[0, 1]), Schedule::steps(&[1, 0])]
        );
    }

    #[test]
    fn read_read_is_independent() {
        // Two reads of the same region commute (gets on one key).
        let toy = Toy::new(vec![vec![Footprint::read(3)], vec![Footprint::read(3)]]);
        let (stats, _) = explore_toy(&toy);
        assert_eq!(stats.classes, 1);
        assert_eq!(stats.covered, 2);
    }

    /// Brute-force exactness: on a mixed 3-process toy, the explored
    /// representatives must be exactly the normal forms of the full
    /// space, with class sizes matching the actual class populations.
    #[test]
    fn partition_matches_brute_force() {
        let script = vec![
            vec![Footprint::write(0), Footprint::write(1)],
            vec![Footprint::write(1), Footprint::read(0)],
            vec![Footprint::write(2), Footprint::write(0)],
        ];
        let toy = Toy::new(script.clone());
        let (stats, reps) = explore_toy(&toy);
        let counts = [2usize, 2, 2];
        let space = Schedule::space(&counts);
        assert_eq!(stats.covered, space, "classes must partition the space");

        // Classify every schedule of the space by its normal form.
        let mut by_nf: BTreeMap<Schedule, u128> = BTreeMap::new();
        Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
            let actors = sched.step_actors();
            let mut done = vec![0usize; script.len()];
            let fps: Vec<Footprint> = actors
                .iter()
                .map(|&p| {
                    let fp = script[p][done[p]];
                    done[p] += 1;
                    fp
                })
                .collect();
            let nf = normal_form(&actors, &fps, conflict_dependence);
            *by_nf.entry(nf).or_insert(0) += 1;
        });
        let explored: BTreeMap<Schedule, u128> = {
            let mut m = BTreeMap::new();
            let toy = Toy::new(script.clone());
            Explorer::new(conflict_dependence).run(&toy, |v| {
                if let Visit::Complete {
                    schedule,
                    class_size,
                    ..
                } = v
                {
                    m.insert(schedule.clone(), class_size);
                }
            });
            m
        };
        assert_eq!(
            explored, by_nf,
            "explored reps+sizes == brute-force classes"
        );
        assert_eq!(reps.len() as u64, stats.classes);
    }

    #[test]
    fn always_independent_relation_collapses_to_one_class() {
        // The deliberately wrong relation: everything commutes. The
        // explorer then runs a single serial schedule — the fixture
        // the mutation tests use to show a wrong relation loses bugs.
        fn never(_: &Footprint, _: &Footprint) -> bool {
            false
        }
        let toy = Toy::new(vec![
            vec![Footprint::write(0); 2],
            vec![Footprint::write(0); 2],
        ]);
        let stats = Explorer::new(never).run(&toy, |_| {});
        assert_eq!(stats.classes, 1);
        assert_eq!(stats.covered, Schedule::space(&[2, 2]));
    }

    #[test]
    fn prefix_visits_cover_every_depth() {
        let toy = Toy::new(vec![vec![Footprint::write(0)], vec![Footprint::write(0)]]);
        let mut depths = Vec::new();
        let _ = Explorer::new(conflict_dependence)
            .prefix_sizes(true)
            .run(&toy, |v| {
                if let Visit::Prefix {
                    schedule,
                    class_size,
                    ..
                } = v
                {
                    depths.push((schedule.len(), class_size.unwrap()));
                }
            });
        // Root (1 class of size 1), two depth-1 prefixes, two leaves.
        assert_eq!(depths, vec![(0, 1), (1, 1), (2, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn schedule_space_and_rank_roundtrip() {
        let counts = [2usize, 2, 1];
        assert_eq!(Schedule::space(&counts), 30);
        let mut index: u128 = 0;
        Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
            assert_eq!(sched.rank(&counts), Some(index), "{}", sched.render());
            assert_eq!(
                Schedule::from_rank(&counts, index).as_ref(),
                Some(sched),
                "roundtrip at {index}"
            );
            index += 1;
        });
        assert_eq!(index, 30);
        assert_eq!(Schedule::from_rank(&counts, 30), None);
        // Mis-shaped schedules have no rank in this space.
        assert_eq!(Schedule::steps(&[0, 0, 0, 1, 2]).rank(&counts), None);
        let mut with_crash = Schedule::steps(&[0, 0, 1, 1]);
        with_crash.push(Choice::crash(2));
        assert_eq!(with_crash.rank(&counts), None);
    }

    #[test]
    fn schedule_render_is_stable() {
        let mut s = Schedule::steps(&[0, 1]);
        s.push(Choice::crash(0));
        s.push(Choice {
            kind: ChoiceKind::Restart,
            actor: 0,
        });
        s.push(Choice {
            kind: ChoiceKind::Drop,
            actor: 1,
        });
        assert_eq!(s.render(), "s0 s1 !0 ^0 -1");
        assert_eq!(s.step_actors(), vec![0, 1]);
    }

    #[test]
    fn stats_render_is_byte_stable() {
        let toy = Toy::new(vec![
            vec![Footprint::write(0), Footprint::write(1)],
            vec![Footprint::write(1), Footprint::write(2)],
        ]);
        let a = Explorer::new(conflict_dependence).run(&toy, |_| {});
        let b = Explorer::new(conflict_dependence).run(&toy, |_| {});
        assert_eq!(a.render(), b.render());
        assert_eq!(a.covered, Schedule::space(&[2, 2]));
    }

    #[test]
    fn linear_extension_counts_sum_to_space() {
        // A chain-heavy toy: verify Σ class sizes across several shapes.
        for script in [
            vec![vec![Footprint::write(0); 3], vec![Footprint::write(0); 2]],
            vec![vec![Footprint::write(0); 2], vec![Footprint::write(1); 3]],
            vec![
                vec![Footprint::write(0), Footprint::read(1)],
                vec![Footprint::read(0), Footprint::write(1)],
                vec![Footprint::read(0), Footprint::read(1)],
            ],
        ] {
            let counts: Vec<usize> = script.iter().map(Vec::len).collect();
            let toy = Toy::new(script);
            let (stats, _) = explore_toy(&toy);
            assert_eq!(stats.covered, Schedule::space(&counts));
        }
    }
}

//! The seeded nemesis: randomized fault schedules from one xorshift
//! seed, replayable byte-for-byte.
//!
//! A [`ChaosPlan`] is a *pure function of `(seed, spec)`*: node
//! crash/restart windows, link-level loss/duplication/delay intensities,
//! single-node isolations (partitions), an optional active-metadata
//! crash (driving the hot-standby takeover of §4.4), and optional admin
//! churn (add a spare / remove a node). The driver in `tests/chaos.rs`
//! maps the plan onto the simulator's `FaultPlan` and crash scheduling;
//! this module deliberately knows nothing about transports or topologies
//! so the same plan can drive NICE and NOOB (and the checker can blame
//! the protocol, never the schedule).
//!
//! Every fault in a plan heals before `spec.horizon`, so a run that
//! lasts comfortably past the horizon always ends with a connected,
//! fully-live cluster — histories stay non-vacuous.

use std::fmt::Write as _;

use node_rt::Time;

use crate::explore::{Choice, ChoiceKind, Schedule};

/// What kinds and how much chaos to draw.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Storage-node count (crash/isolation targets are drawn from it).
    pub nodes: usize,
    /// All fault activity ends by this time (downed nodes restarted,
    /// partitions healed, packet-level faults switched off).
    pub horizon: Time,
    /// Crash/restart events to draw (each on a distinct node).
    pub crashes: usize,
    /// Single-node isolation windows to draw.
    pub isolations: usize,
    /// Crash the active metadata service mid-run (NICE: the hot standby
    /// must take over).
    pub metadata_failover: bool,
    /// Queue admin churn mid-run: add a spare node, then remove a node.
    pub admin_churn: bool,
}

/// One node crash/restart window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node (storage index) to crash.
    pub node: usize,
    /// Crash time.
    pub down: Time,
    /// Restart time (always present: chaos always heals).
    pub up: Time,
}

/// One single-node network isolation window (the node stays alive but
/// cannot reach the other storage nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolationEvent {
    /// The node (storage index) to isolate.
    pub node: usize,
    /// Isolation start.
    pub from: Time,
    /// Isolation end (heals).
    pub until: Time,
}

/// Admin churn drawn into a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminEvent {
    /// Bring the provisioned spare (storage index `node`) into service.
    AddNode(usize),
    /// Decommission storage node `node`.
    RemoveNode(usize),
}

/// A fully-derived chaos schedule. See the module docs.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The seed it was derived from (also seeds the packet-fault RNG).
    pub seed: u64,
    /// Packet loss probability in the fault window.
    pub loss: f64,
    /// Packet duplication probability in the fault window.
    pub dup: f64,
    /// Extra-delay probability in the fault window.
    pub delay_prob: f64,
    /// Extra-delay upper bound.
    pub delay_max: Time,
    /// Packet-level faults start here...
    pub fault_from: Time,
    /// ...and stop here (= `spec.horizon`).
    pub fault_until: Time,
    /// Node crash/restart windows (distinct nodes).
    pub crashes: Vec<CrashEvent>,
    /// Node isolation windows.
    pub isolations: Vec<IsolationEvent>,
    /// When to crash the active metadata service, if drawn.
    pub meta_crash: Option<Time>,
    /// Timed admin operations, sorted by time.
    pub admin: Vec<(Time, AdminEvent)>,
}

/// xorshift64* — the same tiny PRNG family the simulator uses; state
/// premixed so seed 0 still works.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Xorshift {
        Xorshift((seed ^ 0xC4A0_5C4A_05C4_A05C) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`; `lo` when the range is empty.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next() % (hi - lo)
    }

    /// A time uniform in `[lo, hi)`, at microsecond granularity.
    fn time_in(&mut self, lo: Time, hi: Time) -> Time {
        Time(self.range(lo.as_ns() / 1_000, hi.as_ns() / 1_000) * 1_000)
    }
}

impl ChaosPlan {
    /// Derive the full schedule for `seed` under `spec`. Pure: the same
    /// arguments always produce the identical plan.
    pub fn generate(seed: u64, spec: &ChaosSpec) -> ChaosPlan {
        let mut rng = Xorshift::new(seed);
        let fault_from = Time::from_ms(500);
        let fault_until = spec.horizon;
        // Mild packet-level background noise: enough to exercise retry
        // and duplicate-suppression paths, small against retry periods.
        let loss = rng.f64() * 0.03;
        let dup = rng.f64() * 0.01;
        let delay_prob = rng.f64() * 0.05;
        let delay_max = Time(rng.range(100_000, 2_000_000)); // 0.1–2 ms

        // Crash windows on distinct nodes, each healing before the
        // horizon (restart leaves time for the two-phase rejoin).
        let mut pool: Vec<usize> = (0..spec.nodes).collect();
        let mut crashes = Vec::new();
        for _ in 0..spec.crashes.min(pool.len()) {
            let node = pool.remove(rng.range(0, pool.len() as u64) as usize);
            let latest_down = Time(spec.horizon.as_ns() / 2);
            let down = rng.time_in(Time::from_ms(800), latest_down);
            let up = down + rng.time_in(Time::from_ms(500), Time::from_ms(2500));
            crashes.push(CrashEvent { node, down, up });
        }

        let mut isolations = Vec::new();
        for _ in 0..spec.isolations {
            let node = rng.range(0, spec.nodes as u64) as usize;
            let from = rng.time_in(Time::from_ms(800), Time(spec.horizon.as_ns() * 2 / 3));
            let until = from + rng.time_in(Time::from_ms(300), Time::from_ms(1500));
            isolations.push(IsolationEvent { node, from, until });
        }

        let meta_crash = spec
            .metadata_failover
            .then(|| rng.time_in(Time::from_ms(1000), Time(spec.horizon.as_ns() / 2)));

        let mut admin = Vec::new();
        if spec.admin_churn {
            // The driver provisions one spare at index `nodes`; bring it
            // in, then (later) remove an original node that is not mid-
            // crash, shrinking back to the starting capacity.
            let t_add = rng.time_in(Time::from_ms(1200), Time(spec.horizon.as_ns() / 2));
            admin.push((t_add, AdminEvent::AddNode(spec.nodes)));
            let crashed: Vec<usize> = crashes.iter().map(|c| c.node).collect();
            let candidates: Vec<usize> = (0..spec.nodes).filter(|n| !crashed.contains(n)).collect();
            if !candidates.is_empty() {
                let victim = candidates[rng.range(0, candidates.len() as u64) as usize];
                let t_rm = t_add + rng.time_in(Time::from_ms(500), Time::from_ms(1500));
                admin.push((t_rm, AdminEvent::RemoveNode(victim)));
            }
        }
        admin.sort_by_key(|(t, _)| *t);

        ChaosPlan {
            seed,
            loss,
            dup,
            delay_prob,
            delay_max,
            fault_from,
            fault_until,
            crashes,
            isolations,
            meta_crash,
            admin,
        }
    }

    /// The plan's fault timeline as a typed [`Schedule`]: every timed
    /// event — crash, restart, isolation start/heal, metadata crash,
    /// admin churn — as a [`Choice`] in time order (ties keep the
    /// category order crashes < isolations < meta < admin). This is the
    /// same vocabulary the DPOR explorer and the interleaving sweeps
    /// use, so a chaos replay witness and an explored counterexample
    /// render in one notation.
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        let mut timed: Vec<(Time, Choice)> = Vec::new();
        let choice = |kind, node: usize| Choice {
            kind,
            actor: node as u32,
        };
        for c in &self.crashes {
            timed.push((c.down, choice(ChoiceKind::Crash, c.node)));
            timed.push((c.up, choice(ChoiceKind::Restart, c.node)));
        }
        for i in &self.isolations {
            timed.push((i.from, choice(ChoiceKind::Isolate, i.node)));
            timed.push((i.until, choice(ChoiceKind::Heal, i.node)));
        }
        if let Some(t) = self.meta_crash {
            timed.push((t, choice(ChoiceKind::MetaCrash, 0)));
        }
        for &(t, ev) in &self.admin {
            timed.push(match ev {
                AdminEvent::AddNode(n) => (t, choice(ChoiceKind::AddNode, n)),
                AdminEvent::RemoveNode(n) => (t, choice(ChoiceKind::RemoveNode, n)),
            });
        }
        timed.sort_by_key(|&(t, _)| t);
        Schedule::from_choices(timed.into_iter().map(|(_, c)| c).collect())
    }

    /// A deterministic, byte-stable rendering of the schedule (replay
    /// assertions compare these across runs).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan seed={} loss={:.6} dup={:.6} delay_p={:.6} delay_max={}ns \
             window=[{},{}]ns",
            self.seed,
            self.loss,
            self.dup,
            self.delay_prob,
            self.delay_max.as_ns(),
            self.fault_from.as_ns(),
            self.fault_until.as_ns(),
        );
        for c in &self.crashes {
            let _ = writeln!(
                s,
                "crash node={} down={}ns up={}ns",
                c.node,
                c.down.as_ns(),
                c.up.as_ns()
            );
        }
        for i in &self.isolations {
            let _ = writeln!(
                s,
                "isolate node={} from={}ns until={}ns",
                i.node,
                i.from.as_ns(),
                i.until.as_ns()
            );
        }
        if let Some(t) = self.meta_crash {
            let _ = writeln!(s, "meta-crash at={}ns", t.as_ns());
        }
        for (t, ev) in &self.admin {
            let _ = writeln!(s, "admin at={}ns {:?}", t.as_ns(), ev);
        }
        let sched = self.schedule();
        if !sched.is_empty() {
            let _ = writeln!(s, "schedule {}", sched.render());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChaosSpec {
        ChaosSpec {
            nodes: 8,
            horizon: Time::from_secs(8),
            crashes: 2,
            isolations: 1,
            metadata_failover: true,
            admin_churn: true,
        }
    }

    #[test]
    fn same_seed_same_plan_byte_for_byte() {
        let a = ChaosPlan::generate(7, &spec());
        let b = ChaosPlan::generate(7, &spec());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::generate(1, &spec());
        let b = ChaosPlan::generate(2, &spec());
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn every_fault_heals_before_the_horizon_plus_slack() {
        for seed in 0..50 {
            let p = ChaosPlan::generate(seed, &spec());
            for c in &p.crashes {
                assert!(c.down < c.up, "seed {seed}: {c:?}");
                assert!(c.up < spec().horizon, "seed {seed}: restart too late {c:?}");
            }
            for i in &p.isolations {
                assert!(i.from < i.until, "seed {seed}: {i:?}");
                assert!(i.until < spec().horizon, "seed {seed}: heal too late {i:?}");
            }
            let crashed: Vec<usize> = p.crashes.iter().map(|c| c.node).collect();
            let distinct: std::collections::BTreeSet<usize> = crashed.iter().copied().collect();
            assert_eq!(
                distinct.len(),
                crashed.len(),
                "seed {seed}: crash nodes repeat"
            );
        }
    }

    #[test]
    fn schedule_is_the_typed_timeline_in_time_order() {
        let p = ChaosPlan::generate(7, &spec());
        let sched = p.schedule();
        // Every drawn event appears exactly once: crash+restart per
        // crash window, isolate+heal per isolation, meta, admin.
        let expect = 2 * p.crashes.len()
            + 2 * p.isolations.len()
            + usize::from(p.meta_crash.is_some())
            + p.admin.len();
        assert_eq!(sched.len(), expect);
        assert!(sched.step_actors().is_empty(), "fault-only timeline");
        // Byte-stable and embedded in the replay witness.
        assert_eq!(
            sched.render(),
            ChaosPlan::generate(7, &spec()).schedule().render()
        );
        assert!(p.render().contains(&format!("schedule {}", sched.render())));
        // A node's restart renders after its crash (time order).
        let r = sched.render();
        for c in &p.crashes {
            let crash = format!("!{}", c.node);
            let restart = format!("^{}", c.node);
            let ci = r.find(&crash).expect("crash rendered");
            let ri = r.find(&restart).expect("restart rendered");
            assert!(ci < ri, "{r}");
        }
    }

    #[test]
    fn churn_respects_the_spec_flags() {
        let quiet = ChaosSpec {
            metadata_failover: false,
            admin_churn: false,
            ..spec()
        };
        let p = ChaosPlan::generate(9, &quiet);
        assert!(p.meta_crash.is_none());
        assert!(p.admin.is_empty());
        let loud = ChaosPlan::generate(9, &spec());
        assert!(loud.meta_crash.is_some());
        assert!(!loud.admin.is_empty());
        assert!(loud.admin.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
    }
}

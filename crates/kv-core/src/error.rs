//! Typed errors for the KV request paths and public client API.
//!
//! The request paths must never panic (`xtask lint` rule
//! `panic-path`): lookups that "cannot fail" under correct operation are
//! still total functions here. When one does fail — a coordinator record
//! vanishing mid-2PC, an in-flight slot missing while a token arrives, a
//! partition view evaporating under the metadata service — the failure
//! surfaces as a [`KvError`] that is counted and retained so the node
//! degrades one operation instead of crashing the process.
//!
//! The same enum is the public operation-outcome type: a completed
//! client operation carries `Result<(), KvError>`
//! ([`crate::OpRecord::result`]) instead of a bare bool, so callers can
//! distinguish "key absent" from "cluster unreachable".

use crate::types::{NodeIdx, OpId, PartitionId};
use std::error::Error;
use std::fmt;

/// A typed failure in the KV request path or client API.
///
/// The `*Missing` variants describe states that are unreachable when the
/// protocol state machines are correct; producing one is a bug, but a
/// bug that should fail a single operation, not the node. The remaining
/// variants are ordinary operation outcomes (not found, timed out,
/// rejected) surfaced to callers as typed errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The 2PC coordinator record for `(key, op)` disappeared while the
    /// operation was still advancing (between ack collection, commit, and
    /// the deadline continuation).
    CoordinatorMissing {
        /// Key of the put being coordinated.
        key: String,
        /// Operation id of the put.
        op: OpId,
    },
    /// A transport token arrived for a client slot that holds no
    /// in-flight operation.
    InflightMissing {
        /// Operation id the token was issued for.
        op: OpId,
    },
    /// A get found no committed value under the key.
    NotFound {
        /// The key that was read.
        key: String,
    },
    /// The server rejected a put (lock conflict that never healed within
    /// the client's retry budget).
    PutRejected {
        /// The key that was written.
        key: String,
    },
    /// The client used its whole retry budget without a conclusive reply
    /// (a client-side timeout; the operation may or may not have taken
    /// effect, which is why histories treat it as indeterminate).
    Timeout {
        /// The key of the abandoned operation.
        key: String,
        /// Attempts used before giving up.
        attempts: u32,
    },
    /// The metadata service has no view for a partition it was asked to
    /// mutate — the partition map and the ring disagree.
    ViewMissing {
        /// The partition without a view.
        partition: PartitionId,
    },
    /// A membership change found no eligible node to take over a role
    /// (promotion, handoff, or division assignment).
    NoEligibleNode {
        /// The partition needing a member, if the failure is per-partition.
        partition: Option<PartitionId>,
    },
    /// The metadata service was asked about a node index outside the
    /// cluster it manages.
    UnknownNode {
        /// The out-of-range node.
        node: NodeIdx,
    },
    /// A gateway had no live backend to forward a request to.
    NoBackend,
    /// The durable log could not force appended records to stable
    /// storage before an acknowledgement (an I/O error on the WAL):
    /// the ack discipline is broken and the node is no longer
    /// crash-safe.
    WalFailed {
        /// The key whose acknowledgement lacked durability.
        key: String,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::CoordinatorMissing { key, op } => {
                write!(
                    f,
                    "2PC coordinator record missing for key {key:?} op {op:?}"
                )
            }
            KvError::InflightMissing { op } => {
                write!(f, "no in-flight client operation for op {op:?}")
            }
            KvError::NotFound { key } => write!(f, "key {key:?} not found"),
            KvError::PutRejected { key } => write!(f, "put of key {key:?} rejected"),
            KvError::Timeout { key, attempts } => {
                write!(f, "timed out on key {key:?} after {attempts} attempts")
            }
            KvError::ViewMissing { partition } => {
                write!(f, "no view for partition {}", partition.0)
            }
            KvError::NoEligibleNode { partition } => match partition {
                Some(p) => write!(f, "no eligible node for partition {}", p.0),
                None => write!(f, "no eligible node"),
            },
            KvError::UnknownNode { node } => {
                write!(f, "node index {} outside the cluster", node.0)
            }
            KvError::NoBackend => write!(f, "gateway has no live backend"),
            KvError::WalFailed { key } => {
                write!(f, "WAL sync failed before acknowledging key {key:?}")
            }
        }
    }
}

impl Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use node_rt::Ipv4;

    fn op() -> OpId {
        OpId {
            client: Ipv4::new(10, 0, 0, 1),
            client_seq: 7,
        }
    }

    #[test]
    fn display_names_the_key_and_op() {
        let e = KvError::CoordinatorMissing {
            key: "user1".to_owned(),
            op: op(),
        };
        let s = e.to_string();
        assert!(s.contains("user1"), "{s}");
        assert!(s.contains("coordinator"), "{s}");
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn Error> = Box::new(KvError::InflightMissing { op: op() });
        assert!(e.to_string().contains("in-flight"));
    }
}

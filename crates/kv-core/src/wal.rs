//! The durable log behind the object store's persistent write path.
//!
//! Figure 3's +L / -L steps and the W object write are *modeled* by the
//! simulator (device-queue delays, [`crate::ObjectStore`]'s in-memory
//! `log`) but must be *real* on the real runtime: a node killed
//! mid-storm may only re-enter the cluster if every acknowledged write
//! survives in its on-disk state. [`DurableLog`] is that seam — the
//! store appends a [`WalRecord`] for every durable mutation and the
//! engine forces a [`DurableLog::sync`] before any ack-bearing
//! [`Effect`](crate::Effect) leaves the node (the `fsync_discipline`
//! lint rule checks this discipline statically).
//!
//! Two implementations:
//!
//! * [`MemLog`] — the simulator's model: appends count, sync is free.
//!   The in-memory store state *is* the durable state there; crashes go
//!   through [`ObjectStore::on_crash`](crate::ObjectStore::on_crash).
//! * [`FileWal`] — a real file-backed WAL for `node-rt` hosts:
//!   CRC32-framed append records, `fdatasync` on [`DurableLog::sync`],
//!   and a recovery scan ([`FileWal::open`]) that rebuilds the store
//!   (committed objects + the 2PC lock table) and truncates a torn
//!   tail.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

use node_rt::{ByteReader, ByteWriter, Ipv4};

use crate::types::{OpId, Timestamp, Value};

/// One durable mutation of the object store.
///
/// Replaying a record sequence in order rebuilds exactly the state the
/// store's own mutators produced: `Lock` is +L (the tentative value
/// rides along so the later `Commit` needs no second value write),
/// `Commit` is the timestamped promotion (-L), `Apply` is the direct
/// path (`commit_direct`), and `Release` is -L without a promotion
/// (abort, or a lock settled by a recovery sync).
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// +L: `op` locked `key` with tentative `value`.
    Lock {
        /// The key.
        key: String,
        /// The attempt that holds the lock.
        op: OpId,
        /// The tentative value.
        value: Value,
    },
    /// The pending put of `op` on `key` committed with timestamp `ts`.
    Commit {
        /// The key.
        key: String,
        /// The attempt being committed.
        op: OpId,
        /// The commit timestamp.
        ts: Timestamp,
    },
    /// `key` committed directly to `value` at `ts` (no lock round).
    Apply {
        /// The key.
        key: String,
        /// The committed value.
        value: Value,
        /// The commit timestamp.
        ts: Timestamp,
    },
    /// The lock of `op` on `key` released without a local promotion.
    Release {
        /// The key.
        key: String,
        /// The attempt whose lock was released.
        op: OpId,
    },
}

const TAG_LOCK: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_APPLY: u8 = 3;
const TAG_RELEASE: u8 = 4;

/// Frame header: `u32` payload length + `u32` CRC32 of the payload.
const FRAME_HDR: usize = 8;
/// Upper bound on one record's payload; a larger length prefix in the
/// file is corruption, not a record.
const MAX_RECORD: u32 = 64 << 20;

fn put_op(w: &mut ByteWriter, op: OpId) {
    w.u32(op.client.0);
    w.u64(op.client_seq);
}

fn get_op(r: &mut ByteReader<'_>) -> Option<OpId> {
    Some(OpId {
        client: Ipv4(r.u32()?),
        client_seq: r.u64()?,
    })
}

fn put_ts(w: &mut ByteWriter, ts: Timestamp) {
    w.u64(ts.primary_seq);
    w.u32(ts.primary.0);
    w.u64(ts.client_seq);
    w.u32(ts.client.0);
}

fn get_ts(r: &mut ByteReader<'_>) -> Option<Timestamp> {
    Some(Timestamp {
        primary_seq: r.u64()?,
        primary: Ipv4(r.u32()?),
        client_seq: r.u64()?,
        client: Ipv4(r.u32()?),
    })
}

fn put_value(w: &mut ByteWriter, v: &Value) {
    w.bytes(&v.bytes);
    w.u32(v.pad);
}

fn get_value(r: &mut ByteReader<'_>) -> Option<Value> {
    let bytes = r.bytes()?.to_vec();
    let pad = r.u32()?;
    Some(Value {
        bytes: Rc::new(bytes),
        pad,
    })
}

impl WalRecord {
    /// Serialize the record payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            WalRecord::Lock { key, op, value } => {
                w.u8(TAG_LOCK);
                w.str(key);
                put_op(&mut w, *op);
                put_value(&mut w, value);
            }
            WalRecord::Commit { key, op, ts } => {
                w.u8(TAG_COMMIT);
                w.str(key);
                put_op(&mut w, *op);
                put_ts(&mut w, *ts);
            }
            WalRecord::Apply { key, value, ts } => {
                w.u8(TAG_APPLY);
                w.str(key);
                put_value(&mut w, value);
                put_ts(&mut w, *ts);
            }
            WalRecord::Release { key, op } => {
                w.u8(TAG_RELEASE);
                w.str(key);
                put_op(&mut w, *op);
            }
        }
        w.into_vec()
    }

    /// Deserialize one record payload; `None` means corruption.
    pub fn decode(bytes: &[u8]) -> Option<WalRecord> {
        let mut r = ByteReader::new(bytes);
        let rec = match r.u8()? {
            TAG_LOCK => WalRecord::Lock {
                key: r.str()?,
                op: get_op(&mut r)?,
                value: get_value(&mut r)?,
            },
            TAG_COMMIT => WalRecord::Commit {
                key: r.str()?,
                op: get_op(&mut r)?,
                ts: get_ts(&mut r)?,
            },
            TAG_APPLY => WalRecord::Apply {
                key: r.str()?,
                value: get_value(&mut r)?,
                ts: get_ts(&mut r)?,
            },
            TAG_RELEASE => WalRecord::Release {
                key: r.str()?,
                op: get_op(&mut r)?,
            },
            _ => return None,
        };
        if r.is_empty() {
            Some(rec)
        } else {
            None
        }
    }
}

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time so
/// the hot append path is one table walk per byte.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the per-record checksum of the WAL frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        let idx = ((c ^ u32::from(b)) & 0xFF) as usize;
        let entry = CRC_TABLE.get(idx).copied().unwrap_or(0);
        c = entry ^ (c >> 8);
    }
    !c
}

/// The durable-log seam of the object store's persistent write path.
///
/// Mutators append; the engine syncs before every ack-bearing effect.
/// `fork` supports the exploration API ([`crate::ObjectStore`] is
/// `Clone` for the DPOR explorer): a forked log is a throwaway
/// in-memory branch, never a second writer on the same file.
pub trait DurableLog: fmt::Debug {
    /// Append one record (buffered; durable only after [`sync`]).
    ///
    /// [`sync`]: DurableLog::sync
    fn append(&mut self, rec: &WalRecord);

    /// Force every appended record to stable storage. Returns false if
    /// durability can no longer be guaranteed (an I/O error on the
    /// backing file); the caller surfaces that as an internal error
    /// rather than acking a write that may not survive.
    fn sync(&mut self) -> bool;

    /// A throwaway in-memory branch of this log for explorer clones.
    fn fork(&self) -> Box<dyn DurableLog>;

    /// Records appended so far.
    fn appends(&self) -> u64;

    /// Syncs performed so far.
    fn syncs(&self) -> u64;
}

/// The simulator's durable-log model: counters only. The in-memory
/// [`ObjectStore`](crate::ObjectStore) state *is* the durable state in
/// the simulator; crash volatility is applied by `on_crash`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemLog {
    appends: u64,
    syncs: u64,
}

impl DurableLog for MemLog {
    fn append(&mut self, _rec: &WalRecord) {
        self.appends += 1;
    }

    fn sync(&mut self) -> bool {
        self.syncs += 1;
        true
    }

    fn fork(&self) -> Box<dyn DurableLog> {
        Box::new(*self)
    }

    fn appends(&self) -> u64 {
        self.appends
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// A file-backed WAL for real (`node-rt`) hosts.
///
/// Record framing: `u32` payload length, `u32` CRC32 of the payload,
/// payload bytes. Appends buffer in memory; [`DurableLog::sync`] writes
/// the buffer and `fdatasync`s the file, so a crash can only lose
/// records that were never synced — i.e. writes that were never acked.
#[derive(Debug)]
pub struct FileWal {
    file: File,
    path: PathBuf,
    /// Appended-but-unsynced frames.
    buf: Vec<u8>,
    appends: u64,
    syncs: u64,
    io_errors: u64,
}

impl FileWal {
    /// Open (or create) the WAL at `path`, replay every intact record,
    /// and truncate the file after the last one — a torn tail (partial
    /// frame from a crash mid-write) or a CRC-rejected record ends the
    /// replay and is cut off, so the next append extends a clean log.
    pub fn open(path: &Path) -> std::io::Result<(FileWal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, good_len) = scan(&bytes);
        if good_len < bytes.len() as u64 {
            file.set_len(good_len)?;
        }
        file.seek(SeekFrom::Start(good_len))?;
        Ok((
            FileWal {
                file,
                path: path.to_path_buf(),
                buf: Vec::new(),
                appends: 0,
                syncs: 0,
                io_errors: 0,
            },
            records,
        ))
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// I/O errors swallowed so far (nonzero means durability is gone).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }
}

impl DurableLog for FileWal {
    fn append(&mut self, rec: &WalRecord) {
        let payload = rec.encode();
        let mut w = ByteWriter::new();
        w.u32(payload.len() as u32);
        w.u32(crc32(&payload));
        let mut frame = w.into_vec();
        frame.extend_from_slice(&payload);
        self.buf.extend_from_slice(&frame);
        self.appends += 1;
    }

    fn sync(&mut self) -> bool {
        if !self.buf.is_empty() {
            if self.file.write_all(&self.buf).is_err() {
                self.io_errors += 1;
                return false;
            }
            self.buf.clear();
        }
        if self.file.sync_data().is_err() {
            self.io_errors += 1;
            return false;
        }
        self.syncs += 1;
        self.io_errors == 0
    }

    fn fork(&self) -> Box<dyn DurableLog> {
        // Explorer clones must not share (or reopen) the file: a fork
        // is a what-if branch whose durability is never consulted.
        Box::new(MemLog {
            appends: self.appends,
            syncs: self.syncs,
        })
    }

    fn appends(&self) -> u64 {
        self.appends
    }

    fn syncs(&self) -> u64 {
        self.syncs
    }
}

/// Walk the raw WAL bytes: every intact frame yields a record; the walk
/// stops at the first torn or corrupt frame. Returns the records and
/// the byte length of the intact prefix.
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut at = 0usize;
    // A torn header (or clean end-of-file) ends the walk.
    while let Some(hdr) = bytes.get(at..at + FRAME_HDR) {
        let mut r = ByteReader::new(hdr);
        let (Some(len), Some(crc)) = (r.u32(), r.u32()) else {
            break;
        };
        if len > MAX_RECORD {
            break; // length prefix is garbage: corrupt frame
        }
        let start = at + FRAME_HDR;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // CRC-rejected record
        }
        let Some(rec) = WalRecord::decode(payload) else {
            break; // CRC ok but undecodable: treat as corruption
        };
        records.push(rec);
        at = start + len as usize;
    }
    (records, at as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_wal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("nice-wal-{}-{tag}-{n}.wal", std::process::id()))
    }

    fn op(seq: u64) -> OpId {
        OpId {
            client: Ipv4::new(10, 0, 1, 1),
            client_seq: seq,
        }
    }

    fn ts(pseq: u64, cseq: u64) -> Timestamp {
        Timestamp {
            primary_seq: pseq,
            primary: Ipv4::new(10, 0, 0, 11),
            client_seq: cseq,
            client: Ipv4::new(10, 0, 1, 1),
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Lock {
                key: "a".into(),
                op: op(1),
                value: Value::from_bytes(vec![1, 2, 3]),
            },
            WalRecord::Commit {
                key: "a".into(),
                op: op(1),
                ts: ts(1, 1),
            },
            WalRecord::Apply {
                key: "b".into(),
                value: Value::from_bytes(vec![9]),
                ts: ts(2, 2),
            },
            WalRecord::Release {
                key: "c".into(),
                op: op(3),
            },
        ]
    }

    fn render(recs: &[WalRecord]) -> String {
        format!("{recs:?}")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip_through_encode_decode() {
        for rec in sample_records() {
            let bytes = rec.encode();
            let back = WalRecord::decode(&bytes).expect("roundtrip");
            assert_eq!(render(&[rec]), render(&[back]));
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_records().remove(3).encode();
        bytes.push(0xFF);
        assert!(WalRecord::decode(&bytes).is_none());
    }

    #[test]
    fn file_wal_replays_what_was_synced() {
        let path = temp_wal("replay");
        {
            let (mut wal, recovered) = FileWal::open(&path).expect("fresh wal");
            assert!(recovered.is_empty());
            for rec in sample_records() {
                wal.append(&rec);
            }
            assert!(wal.sync());
            assert_eq!(wal.appends(), 4);
            assert_eq!(wal.syncs(), 1);
        }
        let (_wal, recovered) = FileWal::open(&path).expect("reopen");
        assert_eq!(render(&recovered), render(&sample_records()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsynced_appends_are_lost_on_reopen() {
        let path = temp_wal("unsynced");
        {
            let (mut wal, _) = FileWal::open(&path).expect("fresh wal");
            wal.append(&sample_records().remove(0));
            // no sync: the record never reached the file
        }
        let (_wal, recovered) = FileWal::open(&path).expect("reopen");
        assert!(recovered.is_empty(), "unsynced records must not replay");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_mid_record() {
        let path = temp_wal("torn");
        {
            let (mut wal, _) = FileWal::open(&path).expect("fresh wal");
            for rec in sample_records() {
                wal.append(&rec);
            }
            assert!(wal.sync());
        }
        // Tear the file mid-way through the final record.
        let full = std::fs::read(&path).expect("read wal");
        std::fs::write(&path, &full[..full.len() - 3]).expect("tear");
        let (_wal, recovered) = FileWal::open(&path).expect("recover");
        assert_eq!(
            render(&recovered),
            render(&sample_records()[..3]),
            "intact prefix replays, torn record is dropped"
        );
        assert!(
            std::fs::metadata(&path).expect("meta").len() < full.len() as u64 - 3,
            "the torn tail was truncated away"
        );
        // A new append after recovery extends a clean log.
        {
            let (mut wal, _) = FileWal::open(&path).expect("reopen");
            wal.append(&WalRecord::Release {
                key: "z".into(),
                op: op(9),
            });
            assert!(wal.sync());
        }
        let (_wal, recovered) = FileWal::open(&path).expect("final");
        assert_eq!(recovered.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc_rejected_record_ends_replay() {
        let path = temp_wal("crc");
        {
            let (mut wal, _) = FileWal::open(&path).expect("fresh wal");
            for rec in sample_records() {
                wal.append(&rec);
            }
            assert!(wal.sync());
        }
        // Flip one payload byte inside the second record.
        let mut bytes = std::fs::read(&path).expect("read wal");
        let first_len = {
            let mut r = ByteReader::new(&bytes);
            r.u32().expect("len") as usize
        };
        let target = FRAME_HDR + first_len + FRAME_HDR + 1;
        bytes[target] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt");
        let (_wal, recovered) = FileWal::open(&path).expect("recover");
        assert_eq!(
            render(&recovered),
            render(&sample_records()[..1]),
            "replay stops at the CRC-rejected record"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_log_counts_and_forks() {
        let mut log = MemLog::default();
        log.append(&sample_records().remove(0));
        assert!(log.sync());
        let fork = log.fork();
        assert_eq!(fork.appends(), 1);
        assert_eq!(fork.syncs(), 1);
    }
}

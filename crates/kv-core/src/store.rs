//! The local object store of one storage node.
//!
//! Models what Figure 3 requires: in-memory object locks ("Object locks
//! are maintained in memory only"), a persistent operation log with forced
//! writes (+L / -L), and persistent object writes (W) with a bandwidth +
//! latency cost on a serial storage device.
//!
//! Crash semantics: locks and pending (uncommitted) values are volatile;
//! committed objects and the log survive. The device-queue model mirrors
//! the link model: a write issued at `t` completes at
//! `max(t, device_busy) + latency + size/bandwidth`.

use std::collections::BTreeMap;

use node_rt::Time;

use crate::types::{OpId, Timestamp, Value};
use crate::wal::{DurableLog, MemLog, WalRecord};

/// Storage device cost model.
#[derive(Debug, Clone, Copy)]
pub struct StorageCfg {
    /// Sequential write bandwidth (bytes/sec). The paper's nodes carry
    /// 120 GB SSDs; 300 MB/s is a typical 2017 SATA SSD.
    pub write_bw: u64,
    /// Per-operation latency (sync/flush cost) for forced writes.
    pub op_latency: Time,
}

/// A pending (locked, uncommitted) put.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The attempt that holds the lock.
    pub op: OpId,
    /// The tentative value.
    pub value: Value,
    /// Set once the local write (W in Figure 3) completed.
    pub written: bool,
    /// When the lock was taken (drives the secondary-side detection of a
    /// failed primary: a lock nobody commits is a timeout, §4.4).
    pub locked_at: Time,
}

/// One committed object.
#[derive(Debug, Clone)]
pub struct Committed {
    /// The value.
    pub value: Value,
    /// Its commit timestamp.
    pub ts: Timestamp,
}

/// A persistent log record (+L of Figure 3). Entries are removed on
/// commit/abort (-L); entries still present after a full-cluster crash
/// identify the in-doubt puts (§4.4 "In case of a complete cluster
/// failure, the persistent logs on the nodes will identify the latest put
/// operations").
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// The key being put.
    pub key: String,
    /// The attempt.
    pub op: OpId,
}

/// The object store.
///
/// `Clone` is part of the exploration API: the DPOR explorer forks the
/// store (inside a cloned [`TwoPcEngine`](crate::TwoPcEngine)) to probe
/// a step's read/write footprint without committing to the branch.
#[derive(Debug)]
pub struct ObjectStore {
    cfg: StorageCfg,
    /// Committed objects (persistent).
    committed: BTreeMap<String, Committed>,
    /// The persistent operation log.
    log: Vec<LogEntry>,
    /// Pending puts holding in-memory locks (volatile).
    pending: BTreeMap<String, Pending>,
    /// Device queue.
    busy_until: Time,
    /// Counters.
    writes: u64,
    bytes_written: u64,
    /// The durable log behind the persistent write path: a [`MemLog`]
    /// model in the simulator, a file-backed WAL on real hosts.
    wal: Box<dyn DurableLog>,
}

impl Default for ObjectStore {
    fn default() -> ObjectStore {
        ObjectStore {
            cfg: StorageCfg::default(),
            committed: BTreeMap::new(),
            log: Vec::new(),
            pending: BTreeMap::new(),
            busy_until: Time::ZERO,
            writes: 0,
            bytes_written: 0,
            wal: Box::new(MemLog::default()),
        }
    }
}

impl Clone for ObjectStore {
    fn clone(&self) -> ObjectStore {
        ObjectStore {
            cfg: self.cfg,
            committed: self.committed.clone(),
            log: self.log.clone(),
            pending: self.pending.clone(),
            busy_until: self.busy_until,
            writes: self.writes,
            bytes_written: self.bytes_written,
            // Clones are exploration branches: they fork the durable log
            // into a throwaway in-memory copy, never a second file writer.
            wal: self.wal.fork(),
        }
    }
}

impl Default for StorageCfg {
    fn default() -> StorageCfg {
        StorageCfg {
            write_bw: 300_000_000,
            op_latency: Time::from_us(60),
        }
    }
}

impl ObjectStore {
    /// An empty store with the given device model.
    pub fn new(cfg: StorageCfg) -> ObjectStore {
        ObjectStore {
            cfg,
            ..ObjectStore::default()
        }
    }

    /// An empty store whose persistent write path appends to `wal`
    /// (real hosts pass a [`FileWal`](crate::FileWal) here).
    pub fn with_wal(cfg: StorageCfg, wal: Box<dyn DurableLog>) -> ObjectStore {
        ObjectStore {
            cfg,
            wal,
            ..ObjectStore::default()
        }
    }

    /// Force every appended WAL record to stable storage. Must be
    /// called before any acknowledgement of the appended writes leaves
    /// the node (`fsync_discipline` lint rule). Returns false when the
    /// backing log can no longer guarantee durability.
    pub fn wal_sync(&mut self) -> bool {
        self.wal.sync()
    }

    /// The durable log (stats inspection).
    pub fn wal(&self) -> &dyn DurableLog {
        self.wal.as_ref()
    }

    /// The modeled cost of one forced sync on this device (the
    /// `op_latency` of the cost model). Telemetry charges this per WAL
    /// barrier so the `wal.sync` histogram is identical across hosts —
    /// the real runtime's actual fsync stalls still surface in the
    /// wall-clock phase and end-to-end histograms.
    pub fn sync_cost(&self) -> Time {
        self.cfg.op_latency
    }

    /// Rebuild store state from recovered WAL `records`, in order,
    /// without re-appending them. Recovered pending locks are marked
    /// `written` — their +L reached stable storage by definition — so
    /// they surface as in-doubt entries for §4.4 lock resolution;
    /// `locked_at` restarts at `Time::ZERO`, letting the stale-lock TTL
    /// clear any orphan whose round died with the crash. Replaying the
    /// same records onto the same starting state twice is idempotent.
    pub fn replay(&mut self, records: &[WalRecord]) {
        for rec in records {
            match rec {
                WalRecord::Lock { key, op, value } => {
                    self.pending.insert(
                        key.clone(),
                        Pending {
                            op: *op,
                            value: value.clone(),
                            written: true,
                            locked_at: Time::ZERO,
                        },
                    );
                    if !self.log.iter().any(|e| e.key == *key && e.op == *op) {
                        self.log.push(LogEntry {
                            key: key.clone(),
                            op: *op,
                        });
                    }
                }
                WalRecord::Commit { key, op, ts } => {
                    let Some(p) = self.pending.get(key) else {
                        continue;
                    };
                    if p.op != *op {
                        continue;
                    }
                    let value = p.value.clone();
                    self.pending.remove(key);
                    self.log.retain(|e| !(e.key == *key && e.op == *op));
                    if self.committed.get(key).is_none_or(|c| *ts > c.ts) {
                        self.committed
                            .insert(key.clone(), Committed { value, ts: *ts });
                    }
                }
                WalRecord::Apply { key, value, ts } => {
                    if self.committed.get(key).is_none_or(|c| *ts > c.ts) {
                        self.committed.insert(
                            key.clone(),
                            Committed {
                                value: value.clone(),
                                ts: *ts,
                            },
                        );
                    }
                }
                WalRecord::Release { key, op } => {
                    if self.pending.get(key).is_some_and(|p| p.op == *op) {
                        self.pending.remove(key);
                        self.log.retain(|e| !(e.key == *key && e.op == *op));
                    }
                }
            }
        }
    }

    /// Schedule a device write of `size` bytes at `now`; returns its
    /// completion time. `forced` writes pay the sync latency.
    pub fn write_delay(&mut self, now: Time, size: u32, forced: bool) -> Time {
        let xfer = Time(((size as u64) * 1_000_000_000).div_ceil(self.cfg.write_bw));
        let lat = if forced {
            self.cfg.op_latency
        } else {
            Time::ZERO
        };
        let done = self.busy_until.max(now) + lat + xfer;
        self.busy_until = done;
        self.writes += 1;
        self.bytes_written += size as u64;
        done
    }

    /// Is `key` currently locked?
    pub fn locked(&self, key: &str) -> bool {
        self.pending.contains_key(key)
    }

    /// The pending put on `key`, if any.
    pub fn pending(&self, key: &str) -> Option<&Pending> {
        self.pending.get(key)
    }

    /// Mutable access to the pending put on `key`.
    pub fn pending_mut(&mut self, key: &str) -> Option<&mut Pending> {
        self.pending.get_mut(key)
    }

    /// All pending puts (lock-resolution support).
    pub fn pending_iter(&self) -> impl Iterator<Item = (&String, &Pending)> {
        self.pending.iter()
    }

    /// Lock `key` for `op` with tentative `value` and append the log
    /// entry (+L). Fails (returns false) if locked by a *different* op.
    /// Re-locking by the same op (a client retry) refreshes the value
    /// and the lock time — a lock is only "stale" once its client went
    /// silent.
    pub fn lock(&mut self, key: &str, op: OpId, value: Value, now: Time) -> bool {
        match self.pending.get_mut(key) {
            Some(p) if p.op == op => {
                p.value = value.clone();
                p.locked_at = now;
                self.wal.append(&WalRecord::Lock {
                    key: key.to_owned(),
                    op,
                    value,
                });
                true
            }
            Some(_) => false,
            None => {
                self.pending.insert(
                    key.to_owned(),
                    Pending {
                        op,
                        value: value.clone(),
                        written: false,
                        locked_at: now,
                    },
                );
                self.log.push(LogEntry {
                    key: key.to_owned(),
                    op,
                });
                self.wal.append(&WalRecord::Lock {
                    key: key.to_owned(),
                    op,
                    value,
                });
                true
            }
        }
    }

    /// Commit the pending put on `key` with timestamp `ts`: promote the
    /// tentative value, release the lock, delete the log entry (-L).
    /// Stale commits (older `ts` than the committed version) release the
    /// lock but keep the newer value. Returns true if state changed.
    pub fn commit(&mut self, key: &str, op: OpId, ts: Timestamp) -> bool {
        let Some(p) = self.pending.remove(key) else {
            return false;
        };
        if p.op != op {
            // A different put holds the lock: leave it untouched.
            self.pending.insert(key.to_owned(), p);
            return false;
        }
        self.log.retain(|e| !(e.key == key && e.op == op));
        let newer = self.committed.get(key).is_none_or(|c| ts > c.ts);
        if newer {
            self.committed
                .insert(key.to_owned(), Committed { value: p.value, ts });
        }
        self.wal.append(&WalRecord::Commit {
            key: key.to_owned(),
            op,
            ts,
        });
        true
    }

    /// Commit `key` directly with a known value (recovery sync path).
    pub fn commit_direct(&mut self, key: &str, value: Value, ts: Timestamp) {
        let newer = self.committed.get(key).is_none_or(|c| ts > c.ts);
        if newer {
            self.wal.append(&WalRecord::Apply {
                key: key.to_owned(),
                value: value.clone(),
                ts,
            });
            self.committed
                .insert(key.to_owned(), Committed { value, ts });
        }
    }

    /// Release a pending lock whose attempt `ts` proves committed (the
    /// synced timestamp carries the committing client + sequence). A lock
    /// held by a *different* attempt stays: its commit or abort is still
    /// in flight. Returns true if a lock was released.
    pub fn release_if_committed(&mut self, key: &str, ts: Timestamp) -> bool {
        match self.pending.get(key) {
            Some(p) if p.op.client == ts.client && p.op.client_seq == ts.client_seq => {
                let op = p.op;
                self.pending.remove(key);
                self.log.retain(|e| !(e.key == key && e.op == op));
                self.wal.append(&WalRecord::Release {
                    key: key.to_owned(),
                    op,
                });
                true
            }
            _ => false,
        }
    }

    /// Abort the pending put on `key` (release lock, -L) — but only if
    /// the lock predates `issued`. A retry of the same op re-locks under
    /// the same `OpId`, so an abort from an earlier, abandoned round can
    /// arrive late (e.g. released by a healing partition) and must not
    /// release the lock the *new* round is counting on: the commit that
    /// follows would find nothing to apply and an acked value would
    /// silently vanish. Callers aborting on their own authority (their
    /// round, their stale-lock sweep) pass `Time::MAX`.
    pub fn abort(&mut self, key: &str, op: OpId, issued: Time) -> bool {
        match self.pending.get(key) {
            Some(p) if p.op == op && p.locked_at <= issued => {
                self.pending.remove(key);
                self.log.retain(|e| !(e.key == key && e.op == op));
                self.wal.append(&WalRecord::Release {
                    key: key.to_owned(),
                    op,
                });
                true
            }
            _ => false,
        }
    }

    /// The committed version of `key`.
    pub fn get(&self, key: &str) -> Option<&Committed> {
        self.committed.get(key)
    }

    /// Number of committed objects.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// True if no objects are committed.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Iterate committed objects.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Committed)> {
        self.committed.iter()
    }

    /// Remove a committed object (handoff cleanup after the original node
    /// drained it).
    pub fn remove(&mut self, key: &str) -> Option<Committed> {
        self.committed.remove(key)
    }

    /// Highest commit `primary_seq` applied (the failover sequence floor).
    pub fn max_primary_seq(&self) -> u64 {
        self.committed
            .values()
            .map(|c| c.ts.primary_seq)
            .max()
            .unwrap_or(0)
    }

    /// The persistent log (full-cluster recovery reads this).
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Crash semantics. Locks are volatile ("Object locks are maintained
    /// in memory only"), but the W step of Figure 3 *persisted* the
    /// tentative value and +L persisted the log entry — so pending puts
    /// whose write completed survive a crash as in-doubt entries that the
    /// §4.4 resolution rules (commit-if-committed-anywhere /
    /// abort-if-locked-everywhere) later settle. Unwritten pendings are
    /// simply gone.
    pub fn on_crash(&mut self) {
        self.pending.retain(|_, p| p.written);
        let keep: Vec<(String, OpId)> = self
            .pending
            .iter()
            .map(|(k, p)| (k.clone(), p.op))
            .collect();
        self.log
            .retain(|e| keep.iter().any(|(k, o)| *k == e.key && *o == e.op));
        self.busy_until = Time::ZERO;
    }

    /// In-doubt entries after a restart: written-but-uncommitted puts
    /// identified by the persistent log (§4.4 "the persistent logs on the
    /// nodes will identify the latest put operations").
    pub fn in_doubt(&self) -> Vec<(String, OpId)> {
        self.pending
            .iter()
            .filter(|(_, p)| p.written)
            .map(|(k, p)| (k.clone(), p.op))
            .collect()
    }

    /// Total device writes issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes written to the device.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use node_rt::Ipv4;

    fn op(seq: u64) -> OpId {
        OpId {
            client: Ipv4::new(10, 0, 1, 1),
            client_seq: seq,
        }
    }

    fn ts(pseq: u64, cseq: u64) -> Timestamp {
        Timestamp {
            primary_seq: pseq,
            primary: Ipv4::new(10, 0, 0, 11),
            client_seq: cseq,
            client: Ipv4::new(10, 0, 1, 1),
        }
    }

    #[test]
    fn lock_commit_roundtrip() {
        let mut s = ObjectStore::new(StorageCfg::default());
        assert!(s.lock("k", op(1), Value::from_bytes(vec![1]), Time::ZERO));
        assert!(s.locked("k"));
        assert_eq!(s.log().len(), 1);
        assert!(s.get("k").is_none(), "pending value invisible to gets");
        assert!(s.commit("k", op(1), ts(1, 1)));
        assert!(!s.locked("k"));
        assert!(s.log().is_empty(), "-L removed the entry");
        assert_eq!(*s.get("k").unwrap().value.bytes, vec![1]);
    }

    #[test]
    fn conflicting_lock_rejected_retry_allowed() {
        let mut s = ObjectStore::new(StorageCfg::default());
        assert!(s.lock("k", op(1), Value::from_bytes(vec![1]), Time::ZERO));
        assert!(
            !s.lock("k", op(2), Value::from_bytes(vec![2]), Time::ZERO),
            "other op must wait"
        );
        assert!(
            s.lock("k", op(1), Value::from_bytes(vec![3]), Time::ZERO),
            "same op may retry"
        );
        assert_eq!(*s.pending("k").unwrap().value.bytes, vec![3]);
        assert_eq!(s.log().len(), 1, "retry does not duplicate the log entry");
    }

    #[test]
    fn stale_commit_keeps_newer_value() {
        let mut s = ObjectStore::new(StorageCfg::default());
        s.lock("k", op(2), Value::from_bytes(vec![2]), Time::ZERO);
        s.commit("k", op(2), ts(5, 2));
        // an older put (lower primary_seq) arrives late
        s.lock("k", op(1), Value::from_bytes(vec![1]), Time::ZERO);
        assert!(s.commit("k", op(1), ts(3, 1)));
        assert_eq!(*s.get("k").unwrap().value.bytes, vec![2], "newer ts wins");
        assert!(!s.locked("k"), "lock still released");
    }

    #[test]
    fn abort_releases_without_commit() {
        let mut s = ObjectStore::new(StorageCfg::default());
        s.lock("k", op(1), Value::from_bytes(vec![1]), Time::ZERO);
        assert!(s.abort("k", op(1), Time::MAX));
        assert!(!s.locked("k"));
        assert!(s.get("k").is_none());
        assert!(s.log().is_empty());
        // aborting a non-pending key is a no-op
        assert!(!s.abort("k", op(1), Time::MAX));
    }

    #[test]
    fn stale_abort_spares_a_relocked_attempt() {
        let mut s = ObjectStore::new(StorageCfg::default());
        s.lock("k", op(1), Value::from_bytes(vec![1]), Time::from_ms(100));
        // The round is abandoned; a retry of the SAME op re-locks later.
        s.lock("k", op(1), Value::from_bytes(vec![1]), Time::from_ms(500));
        // The abandoned round's abort surfaces late (decided at 200ms,
        // delivered after the re-lock): it must not release the live
        // round's lock, or the commit that follows finds nothing.
        assert!(!s.abort("k", op(1), Time::from_ms(200)));
        assert!(s.locked("k"), "the retried attempt keeps its lock");
        // An abort decided after the re-lock applies normally.
        assert!(s.abort("k", op(1), Time::from_ms(600)));
        assert!(!s.locked("k"));
    }

    #[test]
    fn crash_drops_unwritten_keeps_committed_and_written_pendings() {
        let mut s = ObjectStore::new(StorageCfg::default());
        s.lock("a", op(1), Value::from_bytes(vec![1]), Time::ZERO);
        s.commit("a", op(1), ts(1, 1));
        // "b" locked but its W never completed: gone after the crash.
        s.lock("b", op(2), Value::from_bytes(vec![2]), Time::ZERO);
        // "c" locked AND written: survives as an in-doubt entry.
        s.lock("c", op(3), Value::from_bytes(vec![3]), Time::ZERO);
        s.pending_mut("c").unwrap().written = true;
        s.on_crash();
        assert!(s.get("a").is_some(), "committed survives");
        assert!(!s.locked("b"), "unwritten pending is volatile");
        assert!(s.locked("c"), "written pending survives (it is on disk)");
        assert_eq!(s.log().len(), 1, "log identifies exactly the in-doubt put");
        assert_eq!(s.log()[0].key, "c");
        assert_eq!(s.in_doubt(), vec![("c".to_string(), op(3))]);
    }

    #[test]
    fn device_queue_serializes_writes() {
        let cfg = StorageCfg {
            write_bw: 100_000_000, // 100 MB/s
            op_latency: Time::from_us(50),
        };
        let mut s = ObjectStore::new(cfg);
        let t1 = s.write_delay(Time::ZERO, 1_000_000, false);
        // 1 MB at 100 MB/s = 10 ms
        assert_eq!(t1, Time::from_ms(10));
        let t2 = s.write_delay(Time::ZERO, 0, true);
        assert_eq!(
            t2,
            Time::from_ms(10) + Time::from_us(50),
            "queued behind first write"
        );
        assert_eq!(s.writes(), 2);
        assert_eq!(s.bytes_written(), 1_000_000);
    }

    #[test]
    fn max_primary_seq_tracks_commits() {
        let mut s = ObjectStore::new(StorageCfg::default());
        assert_eq!(s.max_primary_seq(), 0);
        s.lock("a", op(1), Value::from_bytes(vec![1]), Time::ZERO);
        s.commit("a", op(1), ts(7, 1));
        s.lock("b", op(2), Value::from_bytes(vec![2]), Time::ZERO);
        s.commit("b", op(2), ts(3, 2));
        assert_eq!(s.max_primary_seq(), 7);
    }

    #[test]
    fn wal_roundtrip_recovers_committed_and_in_doubt_state() {
        use crate::wal::FileWal;
        let path = std::env::temp_dir().join(format!("nice-store-wal-{}.wal", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let (wal, recovered) = FileWal::open(&path).expect("fresh wal");
            assert!(recovered.is_empty());
            let mut s = ObjectStore::with_wal(StorageCfg::default(), Box::new(wal));
            s.lock("a", op(1), Value::from_bytes(vec![1]), Time::ZERO);
            s.commit("a", op(1), ts(1, 1));
            s.commit_direct("b", Value::from_bytes(vec![2]), ts(2, 2));
            // "c" stays locked: an in-doubt put at crash time.
            s.lock("c", op(3), Value::from_bytes(vec![3]), Time::ZERO);
            assert!(s.wal_sync());
        }
        let recover = |path: &std::path::Path| {
            let (wal, records) = FileWal::open(path).expect("recover");
            let mut s = ObjectStore::with_wal(StorageCfg::default(), Box::new(wal));
            s.replay(&records);
            s
        };
        let once = recover(&path);
        assert_eq!(*once.get("a").unwrap().value.bytes, vec![1]);
        assert_eq!(*once.get("b").unwrap().value.bytes, vec![2]);
        assert!(once.locked("c"), "in-doubt lock survives recovery");
        assert!(
            once.pending("c").unwrap().written,
            "recovered pending counts as written (its +L is on disk)"
        );
        assert_eq!(once.in_doubt(), vec![("c".to_string(), op(3))]);
        assert_eq!(
            once.log().len(),
            1,
            "log identifies exactly the in-doubt put"
        );
        // Recover → recover again ⇒ identical store (replay idempotence;
        // recovery appends nothing, so the file is unchanged too).
        let twice = recover(&path);
        assert_eq!(
            format!("{:?}", (once.iter().collect::<Vec<_>>(), once.log())),
            format!("{:?}", (twice.iter().collect::<Vec<_>>(), twice.log())),
        );
        assert_eq!(twice.in_doubt(), once.in_doubt());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn commit_direct_respects_order() {
        let mut s = ObjectStore::new(StorageCfg::default());
        s.commit_direct("k", Value::from_bytes(vec![9]), ts(9, 1));
        s.commit_direct("k", Value::from_bytes(vec![1]), ts(1, 1));
        assert_eq!(*s.get("k").unwrap().value.bytes, vec![9]);
    }
}

//! Exhaustive interleaving checker for the shared 2PC put state machine.
//!
//! NICE's put protocol (§4.3, Figure 3) serializes concurrent puts to one
//! object through per-replica in-memory locks plus the primary's
//! timestamp quadruplet. The event-driven simulation exercises only the
//! schedules its configuration happens to produce; this harness instead
//! *enumerates* schedules against the production [`TwoPcEngine`] — the
//! same state machine both NICE and NOOB adapt. Each concurrent put is
//! modeled as its visible step sequence —
//!
//! ```text
//!   Lock(r0) … Lock(rN)  →  Decide  →  Finish(r0) … Finish(rN)
//! ```
//!
//! — where `Lock(r)` is the data multicast arriving at replica `r`
//! ([`ReplicationEngine::accept`], with write-completion and PutAck1
//! effects pumped through the engine as they would be on the wire),
//! `Decide` is the coordinator's decision point (the engine has either
//! emitted its `Commit` effect by then, or the put deadline fires twice
//! and aborts, mirroring §4.3), and `Finish(r)` delivers the buffered
//! commit/abort to replica `r` ([`ReplicationEngine::on_commit`] /
//! [`ReplicationEngine::on_abort`]). Replica 0 hosts the coordinator.
//! Every schedule must uphold:
//!
//! 1. **no stranded locks / no deadlock** — at quiescence no replica
//!    holds a pending lock, the persistent log is drained (every +L got
//!    its -L), and `in_doubt()` is empty;
//! 2. **no lost update** — every replica's committed value for the key
//!    is exactly the value of the committed put with the greatest
//!    timestamp (or absent when every put aborted);
//! 3. **replica convergence** — all replicas hold byte-identical
//!    committed state;
//! 4. **progress** — a put that acquired every replica lock commits.
//!
//! The two-put × three-replica and three-put × one-replica spaces are
//! covered exhaustively (3432 + 1680 schedules); the three-put ×
//! two-replica space (756 756 schedules) runs as a deterministic 10 000
//! schedule prefix in the fast tier and in full under `--include-ignored`
//! (`scripts/check.sh --release` wires it in).
//!
//! On top of the fault-free sweeps, three failure dimensions are
//! enumerated: **primary failover mid-2PC** (every schedule × every
//! crash point, followed by client retries, the production
//! [`LockResolution`] settlement, and the two-phase rejoin catch-up),
//! **message loss** (every wire message of every schedule dropped in
//! turn), and **message duplication** (every wire message delivered
//! twice, asserting byte-identical outcomes). A seeded lock-release
//! mutation test confirms the invariants still have teeth.

use std::collections::{BTreeSet, VecDeque};

use kv_core::{
    Effect, EngineCfg, EngineRole, Group, LockResolution, NodeIdx, OpId, ReplicationEngine,
    StorageCfg, Timestamp, TwoPcEngine, Value,
};
use nice_sim::{Ipv4, Time};

const KEY: &str = "obj";
const PRIMARY: Ipv4 = Ipv4::new(10, 0, 0, 1);

/// The protocol-visible steps of one put, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// The data multicast arrives at replica `r` (lock + forced +L/W).
    Lock(usize),
    /// The coordinator's commit/abort decision point.
    Decide,
    /// The commit/abort notice arrives at replica `r`.
    Finish(usize),
}

fn step_of(idx: usize, replicas: usize) -> Step {
    if idx < replicas {
        Step::Lock(idx)
    } else if idx == replicas {
        Step::Decide
    } else {
        Step::Finish(idx - replicas - 1)
    }
}

fn op_id(o: usize) -> OpId {
    OpId {
        client: Ipv4::new(10, 0, 1, o as u8 + 1),
        client_seq: 1,
    }
}

fn value_of(o: usize) -> Value {
    Value::from_bytes(vec![b'A' + o as u8; 8])
}

fn group(replicas: usize) -> Group {
    Group {
        peers: (1..replicas as u32).map(NodeIdx).collect(),
        self_addr: PRIMARY,
    }
}

/// The NICE-style engine configuration: armed put deadlines, commit on
/// delivery (not inline), durable pending writes.
fn engine() -> TwoPcEngine {
    TwoPcEngine::new(EngineCfg {
        storage: StorageCfg::default(),
        op_timeout: Some(Time::from_ms(500)),
        inline_commit: false,
        durable_pending: true,
        stale_lock_ttl: None,
    })
}

/// Everything observable after one schedule has run to quiescence.
struct Outcome {
    /// Committed timestamp per put (`None` = aborted).
    committed: Vec<Option<Timestamp>>,
    /// Final committed `(bytes, ts)` of the key per replica.
    finals: Vec<Option<(Vec<u8>, Timestamp)>>,
    /// Replicas with a pending lock, a log entry, or an in-doubt put left.
    stranded: bool,
}

/// Wire-level fate of one step's message. `Decide` is coordinator-local
/// and is never faulted — loss and duplication act on the messages that
/// carry data and commit/abort notices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// The message arrives once (the fault-free path).
    Deliver,
    /// The message is lost; the step has no effect on the replica.
    Drop,
    /// The message arrives twice (a retry raced the original).
    Dup,
}

/// Seeded protocol mutations the checker must be able to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// The faithful protocol.
    None,
    /// The abort path forgets to deliver the release to the replicas.
    SkipAbortRelease,
}

/// A single live execution: one production [`TwoPcEngine`] per replica
/// (replica 0 hosts the coordinator) plus the schedule's bookkeeping.
struct Run {
    engines: Vec<TwoPcEngine>,
    cursor: Vec<usize>,
    locked: Vec<Vec<bool>>,
    /// None = undecided; Some(Some(ts)) = commit; Some(None) = abort.
    decision: Vec<Option<Option<Timestamp>>>,
    /// Puts whose client received a PutReply (ok or failed).
    replied: Vec<bool>,
    /// Puts whose commit reached at least one replica store.
    applied: Vec<bool>,
}

impl Run {
    fn new(ops: usize, replicas: usize) -> Run {
        Run {
            engines: (0..replicas).map(|_| engine()).collect(),
            cursor: vec![0; ops],
            locked: vec![vec![false; replicas]; ops],
            decision: vec![None; ops],
            replied: vec![false; ops],
            applied: vec![false; ops],
        }
    }

    fn idx(&self, op: OpId) -> usize {
        (0..self.decision.len())
            .find(|&o| op_id(o) == op)
            .expect("effect for an unknown op")
    }

    /// Deliver engine effects as the wire would: write completions back
    /// into their engine, acks to the coordinator, and buffer the
    /// coordinator's Commit/Abort/Reply outcomes for the schedule's
    /// Finish steps.
    fn pump(&mut self, source: usize, fx: Vec<Effect>) {
        let replicas = self.engines.len();
        let mut q: VecDeque<(usize, Effect)> = fx.into_iter().map(|e| (source, e)).collect();
        while let Some((r, e)) = q.pop_front() {
            let mut fx = Vec::new();
            match e {
                Effect::WriteDone { key, op, .. } => {
                    if r == 0 {
                        let g = group(replicas);
                        self.engines[0].on_written(
                            &key,
                            op,
                            EngineRole::Primary(&g),
                            Time::ZERO,
                            &mut fx,
                        );
                    } else {
                        self.engines[r].on_written(&key, op, EngineRole::Peer, Time::ZERO, &mut fx);
                    }
                    q.extend(fx.into_iter().map(|e| (r, e)));
                }
                Effect::Ack1 { key, op } => {
                    let g = group(replicas);
                    self.engines[0].on_ack1(&key, op, NodeIdx(r as u32), &g, Time::ZERO, &mut fx);
                    q.extend(fx.into_iter().map(|e| (0, e)));
                }
                Effect::Ack2 { key, op } => {
                    let g = group(replicas);
                    self.engines[0].on_ack2(&key, op, NodeIdx(r as u32), Some(&g), &mut fx);
                    q.extend(fx.into_iter().map(|e| (0, e)));
                }
                Effect::Commit { op, ts, .. } => {
                    let o = self.idx(op);
                    self.decision[o] = Some(Some(ts));
                    // The coordinator applies its own commit the moment
                    // the timestamp is minted (see `check_commit`), so
                    // the put is on a replica store from here on.
                    self.applied[o] = true;
                }
                Effect::Abort { op, .. } => {
                    let o = self.idx(op);
                    if self.decision[o].is_none() {
                        self.decision[o] = Some(None);
                    }
                }
                Effect::Reply { op, .. } => {
                    let o = self.idx(op);
                    self.replied[o] = true;
                }
                Effect::Deadline { .. } | Effect::Unresponsive { .. } | Effect::Redrive { .. } => {}
            }
        }
    }

    /// Execute put `o`'s next step under `fault`. `strict` keeps the
    /// fault-free invariant that a fully locked put's first commit is
    /// accepted by every peer replica (the coordinator applies it at
    /// decision time instead).
    fn exec(&mut self, o: usize, fault: Fault, mutation: Mutation, strict: bool) {
        let replicas = self.engines.len();
        let step = step_of(self.cursor[o], replicas);
        self.cursor[o] += 1;
        if fault == Fault::Drop && step != Step::Decide {
            return;
        }
        let copies = if fault == Fault::Dup { 2 } else { 1 };
        let op = op_id(o);
        match step {
            Step::Lock(r) => {
                for _ in 0..copies {
                    let mut fx = Vec::new();
                    self.engines[r].accept(KEY, value_of(o), op, Time::ZERO, &mut fx);
                    self.pump(r, fx);
                }
                self.locked[o][r] = self.engines[r]
                    .store()
                    .pending(KEY)
                    .is_some_and(|p| p.op == op);
            }
            Step::Decide => {
                if self.decision[o].is_none() {
                    // Undecided by now: the coordinator's put deadline
                    // fires twice (§4.3 — the first re-arms, the second
                    // aborts and fails the client).
                    for _ in 0..2 {
                        let g = group(replicas);
                        let mut fx = Vec::new();
                        self.engines[0].on_deadline(KEY, op, Some(&g), Time::ZERO, &mut fx);
                        self.pump(0, fx);
                    }
                    if self.decision[o].is_none() {
                        // No replica ever locked or acked, so no
                        // coordinator record exists: nothing to settle.
                        self.decision[o] = Some(None);
                    }
                }
            }
            Step::Finish(r) => match self.decision[o] {
                Some(Some(ts)) => {
                    for dup in 0..copies {
                        let mut fx = Vec::new();
                        let applied = if r == 0 {
                            let g = group(replicas);
                            self.engines[0].on_commit(KEY, op, ts, EngineRole::Primary(&g), &mut fx)
                        } else {
                            self.engines[r].on_commit(KEY, op, ts, EngineRole::Peer, &mut fx)
                        };
                        self.pump(r, fx);
                        if applied {
                            self.applied[o] = true;
                        }
                        // Replica 0 is the coordinator: it committed at
                        // decision time, so this delivery is the loopback
                        // re-delivery and is an idempotent no-op.
                        if strict && dup == 0 && r != 0 {
                            assert!(
                                applied,
                                "replica {r} rejected the commit of a fully locked put {o}"
                            );
                        }
                    }
                }
                Some(None) => {
                    if mutation == Mutation::SkipAbortRelease {
                        return;
                    }
                    for _ in 0..copies {
                        let mut fx = Vec::new();
                        // No retries in this model: the abort is always
                        // for the round that holds the lock.
                        self.engines[r].on_abort(KEY, op, Time::MAX, &mut fx);
                        self.pump(r, fx);
                    }
                }
                None => unreachable!("schedule violated program order"),
            },
        }
    }

    fn outcome(&self) -> Outcome {
        Outcome {
            committed: self.decision.iter().map(|d| d.flatten()).collect(),
            finals: self
                .engines
                .iter()
                .map(|e| e.store().get(KEY).map(|c| (c.value.bytes.to_vec(), c.ts)))
                .collect(),
            stranded: self.engines.iter().any(|e| {
                let s = e.store();
                s.locked(KEY) || !s.log().is_empty() || !s.in_doubt().is_empty()
            }),
        }
    }
}

/// Run one schedule. `sched[i]` names the put that takes its next step
/// at position `i`; each put's own steps execute in program order.
fn run_schedule(ops: usize, replicas: usize, sched: &[usize]) -> Outcome {
    let mut run = Run::new(ops, replicas);
    for &o in sched {
        run.exec(o, Fault::Deliver, Mutation::None, true);
    }
    run.outcome()
}

fn check_schedule(ops: usize, replicas: usize, sched: &[usize]) -> Outcome {
    let out = run_schedule(ops, replicas, sched);

    // 1. No stranded locks, log entries, or in-doubt puts.
    assert!(
        !out.stranded,
        "stranded lock/log state after schedule {sched:?}"
    );

    // 2 + 3. Every replica converged on the max-timestamp committed put.
    let expect = out
        .committed
        .iter()
        .enumerate()
        .filter_map(|(o, ts)| ts.map(|ts| (ts, o)))
        .max()
        .map(|(ts, o)| (value_of(o).bytes.to_vec(), ts));
    for (r, fin) in out.finals.iter().enumerate() {
        assert_eq!(
            *fin, expect,
            "replica {r} diverged from the winning put after schedule {sched:?}"
        );
    }
    out
}

/// Enumerate distinct interleavings of `ops` sequences of `steps` steps
/// each, in lexicographic order, invoking `f` on every complete schedule
/// until `cap` schedules have been visited. Returns how many ran.
fn enumerate(ops: usize, steps: usize, cap: usize, f: &mut impl FnMut(&[usize])) -> usize {
    fn rec(
        remaining: &mut [usize],
        prefix: &mut Vec<usize>,
        total: usize,
        cap: usize,
        count: &mut usize,
        f: &mut impl FnMut(&[usize]),
    ) {
        if *count >= cap {
            return;
        }
        if prefix.len() == total {
            f(prefix);
            *count += 1;
            return;
        }
        for o in 0..remaining.len() {
            if remaining[o] == 0 {
                continue;
            }
            remaining[o] -= 1;
            prefix.push(o);
            rec(remaining, prefix, total, cap, count, f);
            prefix.pop();
            remaining[o] += 1;
        }
    }
    let mut remaining = vec![steps; ops];
    let mut prefix = Vec::with_capacity(ops * steps);
    let mut count = 0;
    rec(&mut remaining, &mut prefix, ops * steps, cap, &mut count, f);
    count
}

/// Drive every schedule of a configuration and keep cross-schedule tallies.
struct Tally {
    schedules: usize,
    commits: usize,
    aborts: usize,
    all_committed: usize,
    none_committed: usize,
}

fn sweep(ops: usize, replicas: usize, cap: usize) -> Tally {
    let steps = 2 * replicas + 1;
    let mut t = Tally {
        schedules: 0,
        commits: 0,
        aborts: 0,
        all_committed: 0,
        none_committed: 0,
    };
    t.schedules = enumerate(ops, steps, cap, &mut |sched| {
        let out = check_schedule(ops, replicas, sched);
        let c = out.committed.iter().filter(|d| d.is_some()).count();
        t.commits += c;
        t.aborts += ops - c;
        if c == ops {
            t.all_committed += 1;
        }
        if c == 0 {
            t.none_committed += 1;
        }
    });
    t
}

#[test]
fn two_puts_three_replicas_exhaustive() {
    // C(14, 7) distinct interleavings of two 7-step puts.
    let t = sweep(2, 3, usize::MAX);
    assert_eq!(t.schedules, 3432);
    // The serial schedules must let both puts commit...
    assert!(t.all_committed > 0, "no schedule committed both puts");
    // ...while overlapping lock phases must produce aborts somewhere.
    assert!(t.aborts > 0, "no schedule aborted a put");
}

#[test]
fn three_puts_one_replica_exhaustive() {
    // 9! / (3!)^3 distinct interleavings of three 3-step puts.
    let t = sweep(3, 1, usize::MAX);
    assert_eq!(t.schedules, 1680);
    // With a single replica the whole round runs inside the Lock step:
    // the sole ack1 arrives synchronously, the coordinator commits at
    // decision time and releases the lock. No put can ever observe a
    // held lock, so every schedule commits all three puts.
    assert_eq!(t.all_committed, t.schedules);
    assert_eq!(t.aborts, 0);
}

#[test]
fn three_puts_two_replicas_prefix() {
    // The full space is 15!/(5!)^3 = 756 756 schedules; a deterministic
    // lexicographic prefix keeps the fast tier bounded while still mixing
    // all three puts (the prefix varies the tails of puts 1 and 2 first).
    let t = sweep(3, 2, 10_000);
    assert_eq!(t.schedules, 10_000);
    assert!(t.commits > 0);
}

#[test]
#[ignore = "full 756,756-schedule sweep; wired into scripts/check.sh --release"]
fn three_puts_two_replicas_full() {
    // The complete 15!/(5!)^3 space, release-tier only.
    let t = sweep(3, 2, usize::MAX);
    assert_eq!(t.schedules, 756_756);
    assert!(t.all_committed > 0, "no schedule committed all three puts");
    assert!(t.aborts > 0, "no schedule aborted a put");
    assert!(t.none_committed > 0, "no schedule aborted every put");
}

// ---------------------------------------------------------------------
// Failure dimensions: primary failover mid-2PC, message loss, and
// message duplication. Every faulted run ends with client retries plus
// the production §4.4 resolution (the new primary settles surviving
// locks through `LockResolution`) and the two-phase rejoin catch-up,
// and must then satisfy the same quiescence and convergence invariants
// as the fault-free sweeps.
// ---------------------------------------------------------------------

/// What the §4.4 settlement decided, per verdict.
struct Settled {
    /// Verdicts settled by commit (commit-if-committed-anywhere fired).
    commits: usize,
    /// Verdicts settled by abort (no committed copy was reported).
    aborts: usize,
}

/// Run the production §4.4 resolution until no lock is left anywhere:
/// each round the acting primary seeds a [`LockResolution`] with its own
/// [`ReplicationEngine::lock_report`], absorbs every other member's, and
/// applies the settled verdicts (commit with the reported timestamp, or
/// abort) to every member. One round settles one attempt per key, so
/// stacked lock states (different ops locked on different replicas)
/// drain over successive rounds — exactly how the secondary lock-timeout
/// path re-triggers resolution in the live system.
fn settle_all(run: &mut Run, acting: usize) -> Settled {
    let mut settled = Settled {
        commits: 0,
        aborts: 0,
    };
    let replicas = run.engines.len();
    for _round in 0..8 {
        let (seed, floor) = run.engines[acting].lock_report(&|k| k == KEY);
        let waiting: BTreeSet<NodeIdx> = (0..replicas)
            .filter(|&r| r != acting)
            .map(|r| NodeIdx(r as u32))
            .collect();
        let mut res = LockResolution::new(waiting, seed, floor);
        for r in (0..replicas).filter(|&r| r != acting) {
            let (locked, max_seq) = run.engines[r].lock_report(&|k| k == KEY);
            res.absorb(NodeIdx(r as u32), locked, max_seq);
        }
        assert!(res.complete(), "every member reported synchronously");
        let (max_seq, verdicts) = res.settle();
        run.engines[acting].observe_seq(max_seq);
        if verdicts.is_empty() {
            return settled;
        }
        for (key, op, verdict) in verdicts {
            let o = run.idx(op);
            match verdict {
                Some(ts) => {
                    settled.commits += 1;
                    for r in 0..replicas {
                        let mut fx = Vec::new();
                        if run.engines[r].on_commit(&key, op, ts, EngineRole::Observer, &mut fx) {
                            run.applied[o] = true;
                        }
                    }
                }
                None => {
                    settled.aborts += 1;
                    for r in 0..replicas {
                        let mut fx = Vec::new();
                        run.engines[r].on_abort(&key, op, Time::MAX, &mut fx);
                    }
                }
            }
        }
    }
    panic!("§4.4 resolution failed to quiesce within 8 rounds");
}

/// §4.3 client retries after a coordinator failure: every put whose
/// client never received a reply re-multicasts its data to the surviving
/// replicas. A retry re-locks wherever the key is free — including on a
/// replica that already committed the attempt, which is what hands the
/// §4.4 resolution its commit-if-committed-anywhere evidence.
fn client_retries(run: &mut Run, survivors: std::ops::Range<usize>) {
    for o in 0..run.replied.len() {
        if run.replied[o] {
            continue;
        }
        for r in survivors.clone() {
            let mut fx = Vec::new();
            run.engines[r].accept(KEY, value_of(o), op_id(o), Time::ZERO, &mut fx);
            for e in fx {
                if let Effect::WriteDone { key, op, .. } = e {
                    let mut sink = Vec::new();
                    run.engines[r].on_written(
                        &key,
                        op,
                        EngineRole::Observer,
                        Time::ZERO,
                        &mut sink,
                    );
                }
            }
        }
    }
}

/// The winning committed copy after resolution, if any.
fn winner_of(run: &Run) -> Option<(Vec<u8>, Timestamp)> {
    run.engines
        .iter()
        .filter_map(|e| e.store().get(KEY))
        .map(|c| (c.value.bytes.to_vec(), c.ts))
        .max_by(|a, b| a.1.cmp(&b.1))
}

/// Phase two of the rejoin: replicas behind the winning copy sync via
/// the recovery path ([`ReplicationEngine::sync_object`]) before they
/// may serve gets again. Returns which replicas needed the sync.
fn catch_up(run: &mut Run, winner: &Option<(Vec<u8>, Timestamp)>) -> Vec<usize> {
    let mut resynced = Vec::new();
    if let Some((bytes, ts)) = winner {
        for r in 0..run.engines.len() {
            if run.engines[r].store().get(KEY).is_none_or(|c| c.ts < *ts) {
                run.engines[r].sync_object(KEY, Value::from_bytes(bytes.clone()), *ts);
                resynced.push(r);
            }
        }
    }
    resynced
}

/// Assert the post-resolution invariants: quiescence (no stranded lock,
/// log, or in-doubt entry anywhere), replica convergence, and no lost
/// update (a commit that reached any replica before the fault survives
/// with a final timestamp at least as new).
fn assert_resolved(run: &Run, applied_pre: &[bool], what: &str) {
    for (r, e) in run.engines.iter().enumerate() {
        let s = e.store();
        assert!(!s.locked(KEY), "stranded lock on replica {r} after {what}");
        assert!(
            s.log().is_empty(),
            "undrained log on replica {r} after {what}"
        );
        assert!(
            s.in_doubt().is_empty(),
            "in-doubt entry left on replica {r} after {what}"
        );
    }
    let finals: Vec<Option<(Vec<u8>, Timestamp)>> = run
        .engines
        .iter()
        .map(|e| e.store().get(KEY).map(|c| (c.value.bytes.to_vec(), c.ts)))
        .collect();
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged after {what}: {finals:?}"
    );
    for (o, &applied) in applied_pre.iter().enumerate() {
        if applied {
            let ts = run.decision[o]
                .flatten()
                .expect("an applied commit implies a commit decision");
            let fin = finals[0]
                .as_ref()
                .unwrap_or_else(|| panic!("applied put {o} vanished after {what}"));
            assert!(
                fin.1 >= ts,
                "lost update: put {o} (ts {ts:?}) was applied but the final copy is older after {what}"
            );
        }
    }
}

/// A put accepted by the new primary while the crashed node is still
/// down: it locks and commits on the surviving replicas only (the new
/// primary's sequence floor comes from the resolution's `observe_seq`),
/// so the rejoiner lags the winning copy until phase two of the rejoin
/// syncs it. Post-resolution the lock must be free everywhere.
fn put_while_down(run: &mut Run) {
    let o = run.decision.len();
    let id = op_id(o);
    let replicas = run.engines.len();
    for r in 1..replicas {
        let mut fx = Vec::new();
        run.engines[r].accept(KEY, value_of(o), id, Time::ZERO, &mut fx);
        assert!(
            run.engines[r]
                .store()
                .pending(KEY)
                .is_some_and(|p| p.op == id),
            "post-resolution lock held on surviving replica {r}"
        );
    }
    let ts = run.engines[1].next_ts(id, PRIMARY);
    for r in 1..replicas {
        let mut fx = Vec::new();
        assert!(
            run.engines[r].on_commit(KEY, id, ts, EngineRole::Observer, &mut fx),
            "surviving replica {r} rejected the new primary's commit"
        );
    }
    run.decision.push(Some(Some(ts)));
    run.replied.push(true);
    run.applied.push(true);
}

/// One primary-failover run: the prefix of `sched` before `crash_at`
/// executes, then the coordinator's node (hosting replica 0's engine)
/// crashes — its in-memory locks and coordinator records vanish
/// ([`ReplicationEngine::reset`]), its written pendings survive as
/// in-doubt entries, and every in-flight step dies with it. With
/// `write_durable` false the crash lands after the lock ack but before
/// the node's object write (W) completed, so its pending does NOT
/// survive. Unreplied clients retry against the survivors, the new
/// primary (replica 1) runs the production resolution — absorbing the
/// rejoiner's persistent-log report too — and with `down_put` true
/// accepts one more put on the surviving replicas while the node is
/// down, so the rejoin must recover the newer object in phase two.
fn check_failover_schedule(
    ops: usize,
    replicas: usize,
    sched: &[usize],
    crash_at: usize,
    write_durable: bool,
    down_put: bool,
) -> (Settled, Vec<usize>) {
    let mut run = Run::new(ops, replicas);
    for &o in &sched[..crash_at] {
        run.exec(o, Fault::Deliver, Mutation::None, false);
    }
    if !write_durable {
        if let Some(p) = run.engines[0].store_mut().pending_mut(KEY) {
            p.written = false;
        }
    }
    run.engines[0].reset();
    let mut applied_pre = run.applied.clone();

    client_retries(&mut run, 1..replicas);
    let settled = settle_all(&mut run, 1);
    if down_put {
        put_while_down(&mut run);
        applied_pre.push(true);
    }
    let winner = winner_of(&run);
    let behind: Vec<usize> = (0..replicas)
        .filter(|&r| match &winner {
            Some((_, ts)) => run.engines[r].store().get(KEY).is_none_or(|c| c.ts < *ts),
            None => false,
        })
        .collect();
    let resynced = catch_up(&mut run, &winner);
    // Two-phase rejoin ordering: every replica whose state lagged the
    // winner at rejoin time must be caught up in phase two, *before*
    // get-eligibility — a get served in between would have returned a
    // stale or missing object.
    assert_eq!(
        behind, resynced,
        "rejoin phase two must sync exactly the lagging replicas ({sched:?} @ {crash_at})"
    );
    assert_resolved(&run, &applied_pre, &format!("{sched:?} @ crash {crash_at}"));
    (settled, resynced)
}

#[test]
fn primary_failover_mid_2pc_exhaustive() {
    // Every interleaving of two 2-replica puts × every crash point. The
    // sweep must exercise the abort rule and make phase two of the
    // rejoin load-bearing. (With a single peer, a commit that reached
    // any survivor has always also been acknowledged, so the
    // commit-resolution rule is exercised by the 3-replica sweep below.)
    let (ops, replicas) = (2, 2);
    let steps = 2 * replicas + 1;
    let mut runs = 0usize;
    let mut resolution_aborts = 0usize;
    let mut primary_rejoined_behind = 0usize;
    enumerate(ops, steps, usize::MAX, &mut |sched| {
        for crash_at in 0..=sched.len() {
            for durable in [true, false] {
                for down_put in [false, true] {
                    let (settled, resynced) =
                        check_failover_schedule(ops, replicas, sched, crash_at, durable, down_put);
                    runs += 1;
                    resolution_aborts += settled.aborts;
                    primary_rejoined_behind += usize::from(resynced.contains(&0));
                }
            }
        }
    });
    assert_eq!(
        runs,
        252 * 11 * 4,
        "C(10,5) schedules x 11 crash points x W durability x down-put"
    );
    assert!(resolution_aborts > 0, "abort-of-undecided-puts never fired");
    assert!(
        primary_rejoined_behind > 0,
        "the crashed primary never rejoined behind — two-phase rejoin was never load-bearing"
    );
}

#[test]
fn primary_failover_three_replicas_prefix() {
    // A deterministic prefix of the 2-put x 3-replica space under every
    // crash point keeps a wider replica set covered without blowing up
    // the runtime. With two peers, a commit can land on one peer while
    // the other is still locked and the client unreplied — the retry
    // re-lock then carries committed evidence, so this sweep is where
    // commit-if-committed-anywhere must fire.
    let (ops, replicas) = (2, 3);
    let steps = 2 * replicas + 1;
    let mut runs = 0usize;
    let mut resolution_commits = 0usize;
    enumerate(ops, steps, 1000, &mut |sched| {
        for crash_at in 0..=sched.len() {
            for (durable, down_put) in [(true, false), (true, true), (false, true)] {
                let (settled, _) =
                    check_failover_schedule(ops, replicas, sched, crash_at, durable, down_put);
                resolution_commits += settled.commits;
                runs += 1;
            }
        }
    });
    assert_eq!(runs, 1000 * 15 * 3);
    assert!(
        resolution_commits > 0,
        "commit-if-committed-anywhere never fired"
    );
}

/// The step a schedule position carries (for skipping `Decide`, which is
/// coordinator-local and has no wire message to fault).
fn step_at(sched: &[usize], pos: usize, replicas: usize) -> Step {
    let o = sched[pos];
    let idx = sched[..pos].iter().filter(|&&x| x == o).count();
    step_of(idx, replicas)
}

#[test]
fn single_message_loss_resolves_without_stranding() {
    // Drop each wire message of each schedule in turn. A lost data copy
    // means the put aborts (its PutAck1 never arrives); a lost
    // commit/abort strands a lock that the production §4.4 resolution
    // must settle, with the phase-two catch-up restoring convergence.
    let (ops, replicas) = (2, 2);
    let steps = 2 * replicas + 1;
    let mut stranded_then_resolved = 0usize;
    enumerate(ops, steps, usize::MAX, &mut |sched| {
        for pos in 0..sched.len() {
            if step_at(sched, pos, replicas) == Step::Decide {
                continue;
            }
            let mut run = Run::new(ops, replicas);
            for (i, &o) in sched.iter().enumerate() {
                let fault = if i == pos {
                    Fault::Drop
                } else {
                    Fault::Deliver
                };
                run.exec(o, fault, Mutation::None, false);
            }
            let applied_pre = run.applied.clone();
            if run.engines.iter().any(|e| e.store().locked(KEY)) {
                stranded_then_resolved += 1;
            }
            settle_all(&mut run, 0);
            let winner = winner_of(&run);
            catch_up(&mut run, &winner);
            assert_resolved(&run, &applied_pre, &format!("{sched:?} drop@{pos}"));
        }
    });
    assert!(
        stranded_then_resolved > 0,
        "no dropped message ever stranded a lock — the sweep is vacuous"
    );
}

#[test]
fn duplicated_messages_are_idempotent() {
    // Deliver each wire message of each schedule twice in turn: a
    // re-lock by the same op refreshes (no duplicate log entry), a
    // re-commit / re-abort is a no-op. The outcome must be
    // byte-identical to the clean run.
    let (ops, replicas) = (2, 2);
    let steps = 2 * replicas + 1;
    enumerate(ops, steps, usize::MAX, &mut |sched| {
        let clean = run_schedule(ops, replicas, sched);
        for pos in 0..sched.len() {
            if step_at(sched, pos, replicas) == Step::Decide {
                continue;
            }
            let mut run = Run::new(ops, replicas);
            for (i, &o) in sched.iter().enumerate() {
                let fault = if i == pos { Fault::Dup } else { Fault::Deliver };
                run.exec(o, fault, Mutation::None, false);
            }
            let dup = run.outcome();
            assert_eq!(
                dup.committed, clean.committed,
                "duplication changed decisions ({sched:?} dup@{pos})"
            );
            assert_eq!(
                dup.finals, clean.finals,
                "duplication changed replica state ({sched:?} dup@{pos})"
            );
            assert!(
                !dup.stranded,
                "duplication stranded a lock ({sched:?} dup@{pos})"
            );
        }
    });
}

#[test]
fn seeded_lock_release_mutation_is_caught() {
    // Sanity check of the checker itself: mutate the abort path to
    // forget the release deliveries and the stranded-lock invariant must
    // fire on some schedule.
    let caught = std::panic::catch_unwind(|| {
        let (ops, replicas) = (2, 3);
        let steps = 2 * replicas + 1;
        enumerate(ops, steps, usize::MAX, &mut |sched| {
            let mut run = Run::new(ops, replicas);
            for &o in sched {
                run.exec(o, Fault::Deliver, Mutation::SkipAbortRelease, false);
            }
            let out = run.outcome();
            assert!(!out.stranded, "stranded lock after {sched:?}");
        });
    });
    assert!(
        caught.is_err(),
        "the checker failed to catch the seeded lock-release mutation"
    );
}

#[test]
fn serial_schedules_always_commit_in_order() {
    // Fully serial executions are the baseline the paper's protocol must
    // preserve: every put commits and the last writer wins.
    for ops in [2usize, 3] {
        let replicas = 3;
        let steps = 2 * replicas + 1;
        let mut sched = Vec::new();
        for o in 0..ops {
            sched.extend(std::iter::repeat_n(o, steps));
        }
        let out = check_schedule(ops, replicas, &sched);
        assert!(out.committed.iter().all(std::option::Option::is_some));
        for fin in &out.finals {
            let (bytes, _) = fin.as_ref().expect("value committed");
            assert_eq!(*bytes, value_of(ops - 1).bytes.to_vec());
        }
    }
}

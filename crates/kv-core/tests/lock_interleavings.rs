//! Interleaving checker for the shared 2PC put state machine, driven by
//! the kv-core DPOR explorer.
//!
//! NICE's put protocol (§4.3, Figure 3) serializes concurrent puts to one
//! object through per-replica in-memory locks plus the primary's
//! timestamp quadruplet. The event-driven simulation exercises only the
//! schedules its configuration happens to produce; this harness instead
//! *enumerates* schedules against the production [`TwoPcEngine`] — the
//! same state machine both NICE and NOOB adapt. Each concurrent put is
//! modeled as its visible step sequence —
//!
//! ```text
//!   Lock(r0) … Lock(rN)  →  Decide  →  Finish(r0) … Finish(rN)
//! ```
//!
//! — where `Lock(r)` is the data multicast arriving at replica `r`
//! ([`ReplicationEngine::accept`], with write-completion and PutAck1
//! effects pumped through the engine as they would be on the wire),
//! `Decide` is the coordinator's decision point (the engine has either
//! emitted its `Commit` effect by then, or the put deadline fires twice
//! and aborts, mirroring §4.3), and `Finish(r)` delivers the buffered
//! commit/abort to replica `r` ([`ReplicationEngine::on_commit`] /
//! [`ReplicationEngine::on_abort`]). Replica 0 hosts the coordinator.
//! Every schedule must uphold:
//!
//! 1. **no stranded locks / no deadlock** — at quiescence no replica
//!    holds a pending lock, the persistent log is drained (every +L got
//!    its -L), and `in_doubt()` is empty;
//! 2. **no lost update** — every replica's committed value for the key
//!    is exactly the value of the committed put with the greatest
//!    timestamp (or absent when every put aborted);
//! 3. **replica convergence** — all replicas hold byte-identical
//!    committed state;
//! 4. **progress** — a put that acquired every replica lock commits.
//!
//! Schedules are [`Schedule`] values; small spaces (two puts × three
//! replicas, three puts × one replica) are still swept exhaustively via
//! [`Schedule::enumerate`] as ground truth. The big spaces run through
//! the [`Explorer`]: [`StepModel`] adapts a live [`Run`] to the
//! [`Model`] trait, observing each step's [`Footprint`] *empirically* —
//! it diffs every replica engine's protocol-visible signature
//! ([`rep_sig`]) across the step to find the write set, and models the
//! read set as the step's home replica. With that relation the full
//! 756,756-schedule three-put × two-replica space is covered in the
//! debug fast tier by visiting one representative per Mazurkiewicz
//! trace class, with the coverage arithmetic (Σ class sizes = full
//! space) asserted exactly; the release tier re-runs the space
//! exhaustively and cross-checks the partition class by class
//! (`three_puts_two_replicas_full_cross_check`).
//!
//! On top of the fault-free sweeps, three failure dimensions are
//! enumerated: **primary failover mid-2PC** (the 2×2 space exhaustively
//! at every crash point; the 2×3 space through the explorer's *prefix*
//! classes — every crash prefix of all 3432 schedules is covered by one
//! representative, with per-depth coverage sums proving the partition),
//! **message loss** (every wire message of every schedule dropped in
//! turn), and **message duplication** (every wire message delivered
//! twice, asserting byte-identical outcomes). Seeded protocol mutations
//! (a forgotten abort release; a lock-stealing accept) confirm both the
//! invariants and the independence relation have teeth: the reduced
//! exploration must catch every mutant the exhaustive sweep catches,
//! while a deliberately-wrong "everything commutes" relation provably
//! misses one.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use kv_core::{
    conflict_dependence, normal_form, Effect, EngineCfg, EngineRole, Explorer, Footprint, Group,
    LockResolution, LogEntry, Model, NodeIdx, OpId, ReplicationEngine, Schedule, StorageCfg,
    Timestamp, TwoPcEngine, Value, Visit,
};
use node_rt::{Ipv4, Time};

const KEY: &str = "obj";
const PRIMARY: Ipv4 = Ipv4::new(10, 0, 0, 1);

/// The protocol-visible steps of one put, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// The data multicast arrives at replica `r` (lock + forced +L/W).
    Lock(usize),
    /// The coordinator's commit/abort decision point.
    Decide,
    /// The commit/abort notice arrives at replica `r`.
    Finish(usize),
}

fn step_of(idx: usize, replicas: usize) -> Step {
    if idx < replicas {
        Step::Lock(idx)
    } else if idx == replicas {
        Step::Decide
    } else {
        Step::Finish(idx - replicas - 1)
    }
}

fn op_id(o: usize) -> OpId {
    OpId {
        client: Ipv4::new(10, 0, 1, o as u8 + 1),
        client_seq: 1,
    }
}

fn value_of(o: usize) -> Value {
    Value::from_bytes(vec![b'A' + o as u8; 8])
}

fn group(replicas: usize) -> Group {
    Group {
        peers: (1..replicas as u32).map(NodeIdx).collect(),
        self_addr: PRIMARY,
    }
}

/// The NICE-style engine configuration: armed put deadlines, commit on
/// delivery (not inline), durable pending writes.
fn engine() -> TwoPcEngine {
    TwoPcEngine::new(EngineCfg {
        storage: StorageCfg::default(),
        op_timeout: Some(Time::from_ms(500)),
        inline_commit: false,
        durable_pending: true,
        telemetry: kv_core::TelemetryCfg::default(),
        stale_lock_ttl: None,
    })
}

/// Everything observable after one schedule has run to quiescence.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    /// Committed timestamp per put (`None` = aborted).
    committed: Vec<Option<Timestamp>>,
    /// Final committed `(bytes, ts)` of the key per replica.
    finals: Vec<Option<(Vec<u8>, Timestamp)>>,
    /// Replicas with a pending lock, a log entry, or an in-doubt put left.
    stranded: bool,
}

/// Wire-level fate of one step's message. `Decide` is coordinator-local
/// and is never faulted — loss and duplication act on the messages that
/// carry data and commit/abort notices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// The message arrives once (the fault-free path).
    Deliver,
    /// The message is lost; the step has no effect on the replica.
    Drop,
    /// The message arrives twice (a retry raced the original).
    Dup,
}

/// Seeded protocol mutations the checker must be able to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    /// The faithful protocol.
    None,
    /// The abort path forgets to deliver the release to the replicas.
    SkipAbortRelease,
    /// An arriving put forcibly releases another put's replica lock
    /// before locking (a botched stale-lock heuristic). The stolen put
    /// still believes it holds the replica set, so its commit silently
    /// fails to apply wherever the thief squatted — an order-dependent
    /// divergence only specific interleavings expose.
    LockSteal,
}

/// A single live execution: one production [`TwoPcEngine`] per replica
/// (replica 0 hosts the coordinator) plus the schedule's bookkeeping.
/// `Clone` lets the DPOR explorer fork an execution mid-schedule.
#[derive(Clone)]
struct Run {
    engines: Vec<TwoPcEngine>,
    cursor: Vec<usize>,
    locked: Vec<Vec<bool>>,
    /// None = undecided; Some(Some(ts)) = commit; Some(None) = abort.
    decision: Vec<Option<Option<Timestamp>>>,
    /// Puts whose client received a PutReply (ok or failed).
    replied: Vec<bool>,
    /// Puts whose commit reached at least one replica store.
    applied: Vec<bool>,
}

impl Run {
    fn new(ops: usize, replicas: usize) -> Run {
        Run {
            engines: (0..replicas).map(|_| engine()).collect(),
            cursor: vec![0; ops],
            locked: vec![vec![false; replicas]; ops],
            decision: vec![None; ops],
            replied: vec![false; ops],
            applied: vec![false; ops],
        }
    }

    fn idx(&self, op: OpId) -> usize {
        (0..self.decision.len())
            .find(|&o| op_id(o) == op)
            .expect("effect for an unknown op")
    }

    /// Deliver engine effects as the wire would: write completions back
    /// into their engine, acks to the coordinator, and buffer the
    /// coordinator's Commit/Abort/Reply outcomes for the schedule's
    /// Finish steps.
    fn pump(&mut self, source: usize, fx: Vec<Effect>) {
        let replicas = self.engines.len();
        let mut q: VecDeque<(usize, Effect)> = fx.into_iter().map(|e| (source, e)).collect();
        while let Some((r, e)) = q.pop_front() {
            let mut fx = Vec::new();
            match e {
                Effect::WriteDone { key, op, .. } => {
                    if r == 0 {
                        let g = group(replicas);
                        self.engines[0].on_written(
                            &key,
                            op,
                            EngineRole::Primary(&g),
                            Time::ZERO,
                            &mut fx,
                        );
                    } else {
                        self.engines[r].on_written(&key, op, EngineRole::Peer, Time::ZERO, &mut fx);
                    }
                    q.extend(fx.into_iter().map(|e| (r, e)));
                }
                Effect::Ack1 { key, op } => {
                    let g = group(replicas);
                    self.engines[0].on_ack1(&key, op, NodeIdx(r as u32), &g, Time::ZERO, &mut fx);
                    q.extend(fx.into_iter().map(|e| (0, e)));
                }
                Effect::Ack2 { key, op } => {
                    let g = group(replicas);
                    self.engines[0].on_ack2(&key, op, NodeIdx(r as u32), Some(&g), &mut fx);
                    q.extend(fx.into_iter().map(|e| (0, e)));
                }
                Effect::Commit { op, ts, .. } => {
                    let o = self.idx(op);
                    self.decision[o] = Some(Some(ts));
                    // The coordinator applies its own commit the moment
                    // the timestamp is minted (see `check_commit`), so
                    // the put is on a replica store from here on.
                    self.applied[o] = true;
                }
                Effect::Abort { op, .. } => {
                    let o = self.idx(op);
                    if self.decision[o].is_none() {
                        self.decision[o] = Some(None);
                    }
                }
                Effect::Reply { op, .. } => {
                    let o = self.idx(op);
                    self.replied[o] = true;
                }
                Effect::Deadline { .. } | Effect::Unresponsive { .. } | Effect::Redrive { .. } => {}
            }
        }
    }

    /// Execute put `o`'s next step under `fault`. `strict` keeps the
    /// fault-free invariant that a fully locked put's first commit is
    /// accepted by every peer replica (the coordinator applies it at
    /// decision time instead).
    fn exec(&mut self, o: usize, fault: Fault, mutation: Mutation, strict: bool) {
        let replicas = self.engines.len();
        let step = step_of(self.cursor[o], replicas);
        self.cursor[o] += 1;
        if fault == Fault::Drop && step != Step::Decide {
            return;
        }
        let copies = if fault == Fault::Dup { 2 } else { 1 };
        let op = op_id(o);
        match step {
            Step::Lock(r) => {
                if mutation == Mutation::LockSteal {
                    // The mutant "frees" a lock another put holds. The
                    // release is local misbehavior, not wire traffic, so
                    // its effects are discarded, not pumped.
                    let victim = self.engines[r]
                        .store()
                        .pending(KEY)
                        .map(|p| p.op)
                        .filter(|&v| v != op);
                    if let Some(victim) = victim {
                        let mut sink = Vec::new();
                        self.engines[r].on_abort(KEY, victim, Time::MAX, &mut sink);
                    }
                }
                for _ in 0..copies {
                    let mut fx = Vec::new();
                    self.engines[r].accept(KEY, value_of(o), op, Time::ZERO, &mut fx);
                    self.pump(r, fx);
                }
                self.locked[o][r] = self.engines[r]
                    .store()
                    .pending(KEY)
                    .is_some_and(|p| p.op == op);
            }
            Step::Decide => {
                if self.decision[o].is_none() {
                    // Undecided by now: the coordinator's put deadline
                    // fires twice (§4.3 — the first re-arms, the second
                    // aborts and fails the client).
                    for _ in 0..2 {
                        let g = group(replicas);
                        let mut fx = Vec::new();
                        self.engines[0].on_deadline(KEY, op, Some(&g), Time::ZERO, &mut fx);
                        self.pump(0, fx);
                    }
                    if self.decision[o].is_none() {
                        // No replica ever locked or acked, so no
                        // coordinator record exists: nothing to settle.
                        self.decision[o] = Some(None);
                    }
                }
            }
            Step::Finish(r) => match self.decision[o] {
                Some(Some(ts)) => {
                    for dup in 0..copies {
                        let mut fx = Vec::new();
                        let applied = if r == 0 {
                            let g = group(replicas);
                            self.engines[0].on_commit(KEY, op, ts, EngineRole::Primary(&g), &mut fx)
                        } else {
                            self.engines[r].on_commit(KEY, op, ts, EngineRole::Peer, &mut fx)
                        };
                        self.pump(r, fx);
                        if applied {
                            self.applied[o] = true;
                        }
                        // Replica 0 is the coordinator: it committed at
                        // decision time, so this delivery is the loopback
                        // re-delivery and is an idempotent no-op.
                        if strict && dup == 0 && r != 0 {
                            assert!(
                                applied,
                                "replica {r} rejected the commit of a fully locked put {o}"
                            );
                        }
                    }
                }
                Some(None) => {
                    if mutation == Mutation::SkipAbortRelease {
                        return;
                    }
                    for _ in 0..copies {
                        let mut fx = Vec::new();
                        // No retries in this model: the abort is always
                        // for the round that holds the lock.
                        self.engines[r].on_abort(KEY, op, Time::MAX, &mut fx);
                        self.pump(r, fx);
                    }
                }
                None => unreachable!("schedule violated program order"),
            },
        }
    }

    fn outcome(&self) -> Outcome {
        Outcome {
            committed: self.decision.iter().map(|d| d.flatten()).collect(),
            finals: self
                .engines
                .iter()
                .map(|e| e.store().get(KEY).map(|c| (c.value.bytes.to_vec(), c.ts)))
                .collect(),
            stranded: self.engines.iter().any(|e| {
                let s = e.store();
                s.locked(KEY) || !s.log().is_empty() || !s.in_doubt().is_empty()
            }),
        }
    }
}

// ---------------------------------------------------------------------
// The DPOR model: a Run adapted to kv_core::Model, with footprints
// observed by diffing replica signatures across each step.
// ---------------------------------------------------------------------

/// One replica engine's protocol-visible signature: the lock holder (and
/// whether its write completed), the committed copy, the persistent log,
/// and the sequence floor. This is exactly the state a step of *another*
/// put can observe — coordinator records, ack counts, and queued waiters
/// are keyed per `(key, op)` and only ever touched by their own put's
/// program-ordered steps, so they cannot carry cross-put dependences.
/// Diffing signatures across a step yields its write footprint
/// empirically; the read footprint is the step's home replica (a
/// delivery consults that replica's lock/committed state to decide what
/// to do).
type RepSig = (
    Option<(OpId, bool)>,
    Option<(Vec<u8>, Timestamp)>,
    Vec<LogEntry>,
    u64,
);

fn rep_sig(e: &TwoPcEngine) -> RepSig {
    let s = e.store();
    (
        s.pending(KEY).map(|p| (p.op, p.written)),
        s.get(KEY).map(|c| (c.value.bytes.to_vec(), c.ts)),
        s.log().to_vec(),
        e.lock_report(&|_| false).1,
    )
}

/// A live [`Run`] as a DPOR [`Model`]: process `p` is put `p`, its steps
/// the `Lock… Decide Finish…` program. One footprint region per replica.
#[derive(Clone)]
struct StepModel {
    run: Run,
    mutation: Mutation,
    strict: bool,
}

impl StepModel {
    fn new(ops: usize, replicas: usize, mutation: Mutation, strict: bool) -> StepModel {
        StepModel {
            run: Run::new(ops, replicas),
            mutation,
            strict,
        }
    }
}

impl Model for StepModel {
    fn procs(&self) -> usize {
        self.run.cursor.len()
    }

    fn remaining(&self, p: usize) -> usize {
        2 * self.run.engines.len() + 1 - self.run.cursor[p]
    }

    fn step(&mut self, p: usize) -> Footprint {
        let replicas = self.run.engines.len();
        let step = step_of(self.run.cursor[p], replicas);
        let undecided = self.run.decision[p].is_none();
        let before: Vec<RepSig> = self.run.engines.iter().map(rep_sig).collect();
        self.run.exec(p, Fault::Deliver, self.mutation, self.strict);
        // Reads: the step's home replica — `accept`/`on_commit`/
        // `on_abort` branch on that replica's lock and committed state.
        // A Decide over an already-buffered decision consults nothing
        // outside its own put's bookkeeping.
        let mut fp = match step {
            Step::Lock(r) | Step::Finish(r) => Footprint::read(r),
            Step::Decide if undecided => Footprint::read(0),
            Step::Decide => Footprint::EMPTY,
        };
        // Writes: every replica whose signature the step changed —
        // including the coordinator when a final ack mints the timestamp
        // (sequence floor + self-applied commit), which is what orders
        // two committing puts.
        for (r, sig) in before.iter().enumerate() {
            if *sig != rep_sig(&self.run.engines[r]) {
                fp.add_write(r);
            }
        }
        fp
    }
}

// ---------------------------------------------------------------------
// Schedule execution + invariants
// ---------------------------------------------------------------------

/// Run one schedule. Each position names the put that takes its next
/// step; each put's own steps execute in program order.
fn run_schedule(ops: usize, replicas: usize, sched: &Schedule) -> Outcome {
    let mut run = Run::new(ops, replicas);
    for o in sched.step_actors() {
        run.exec(o, Fault::Deliver, Mutation::None, true);
    }
    run.outcome()
}

/// The invariant violated by an outcome, if any (None = all hold).
fn outcome_violation(out: &Outcome) -> Option<String> {
    // 1. No stranded locks, log entries, or in-doubt puts.
    if out.stranded {
        return Some("stranded lock/log state".to_owned());
    }
    // 2 + 3. Every replica converged on the max-timestamp committed put.
    let expect = out
        .committed
        .iter()
        .enumerate()
        .filter_map(|(o, ts)| ts.map(|ts| (ts, o)))
        .max()
        .map(|(ts, o)| (value_of(o).bytes.to_vec(), ts));
    for (r, fin) in out.finals.iter().enumerate() {
        if *fin != expect {
            return Some(format!("replica {r} diverged from the winning put"));
        }
    }
    None
}

fn check_outcome(out: &Outcome, what: &str) {
    if let Some(v) = outcome_violation(out) {
        panic!("{v} after schedule {what}");
    }
}

fn check_schedule(ops: usize, replicas: usize, sched: &Schedule) -> Outcome {
    let out = run_schedule(ops, replicas, sched);
    check_outcome(&out, &sched.render());
    out
}

/// Drive every schedule of a configuration and keep cross-schedule tallies.
#[derive(Default)]
struct Tally {
    schedules: usize,
    commits: usize,
    aborts: usize,
    all_committed: usize,
    none_committed: usize,
}

impl Tally {
    /// Absorb one outcome observed `weight` times (1 for exhaustive
    /// sweeps; the class size for DPOR representatives).
    fn absorb(&mut self, ops: usize, out: &Outcome, weight: usize) {
        let c = out.committed.iter().filter(|d| d.is_some()).count();
        self.schedules += weight;
        self.commits += c * weight;
        self.aborts += (ops - c) * weight;
        if c == ops {
            self.all_committed += weight;
        }
        if c == 0 {
            self.none_committed += weight;
        }
    }
}

fn sweep(ops: usize, replicas: usize, cap: u128) -> Tally {
    let counts = vec![2 * replicas + 1; ops];
    let mut t = Tally::default();
    Schedule::enumerate(&counts, cap, &mut |sched| {
        let out = check_schedule(ops, replicas, sched);
        t.absorb(ops, &out, 1);
    });
    t
}

#[test]
fn two_puts_three_replicas_exhaustive() {
    // C(14, 7) distinct interleavings of two 7-step puts.
    let t = sweep(2, 3, u128::MAX);
    assert_eq!(t.schedules, 3432);
    // The serial schedules must let both puts commit...
    assert!(t.all_committed > 0, "no schedule committed both puts");
    // ...while overlapping lock phases must produce aborts somewhere.
    assert!(t.aborts > 0, "no schedule aborted a put");
}

#[test]
fn three_puts_one_replica_exhaustive() {
    // 9! / (3!)^3 distinct interleavings of three 3-step puts.
    let t = sweep(3, 1, u128::MAX);
    assert_eq!(t.schedules, 1680);
    // With a single replica the whole round runs inside the Lock step:
    // the sole ack1 arrives synchronously, the coordinator commits at
    // decision time and releases the lock. No put can ever observe a
    // held lock, so every schedule commits all three puts.
    assert_eq!(t.all_committed, t.schedules);
    assert_eq!(t.aborts, 0);
}

#[test]
fn three_puts_two_replicas_dpor_full() {
    // The tentpole: the full 15!/(5!)^3 = 756,756-schedule space, in the
    // debug fast tier, by exploring one representative per Mazurkiewicz
    // class. `stats.covered` is Σ (linear extensions of each class's
    // happens-before order); equality with the multinomial proves the
    // classes partition the space exactly once. Run twice: the stats
    // must render byte-identically.
    let (ops, replicas) = (3, 2);
    let space = Schedule::space(&[2 * replicas + 1; 3]);
    assert_eq!(space, 756_756);
    let explore = || {
        let root = StepModel::new(ops, replicas, Mutation::None, true);
        let mut t = Tally::default();
        let stats = Explorer::new(conflict_dependence).run(&root, |v| {
            if let Visit::Complete {
                state,
                schedule,
                class_size,
            } = v
            {
                let out = state.run.outcome();
                check_outcome(&out, &schedule.render());
                t.absorb(ops, &out, class_size as usize);
            }
        });
        (stats, t)
    };
    let (a, t) = explore();
    let (b, _) = explore();
    eprintln!("{}", a.render());
    assert_eq!(a.render(), b.render(), "stats must be byte-stable");
    assert_eq!(a.covered, space, "classes must partition the space");
    assert_eq!(t.schedules as u128, space);
    assert!(t.all_committed > 0, "no schedule committed all three puts");
    assert!(t.aborts > 0, "no schedule aborted a put");
    assert!(t.none_committed > 0, "no schedule aborted every put");
}

#[test]
fn two_puts_three_replicas_dpor_matches_exhaustive() {
    // Partition exactness on a real engine space small enough to brute
    // force: classify all 3432 schedules by the greedy normal form of
    // their observed trace, assert every class is outcome-uniform, and
    // assert the explorer visits exactly the normal forms with exactly
    // the brute-force class populations.
    let (ops, replicas) = (2, 3);
    let counts = vec![2 * replicas + 1; ops];
    let mut by_nf: BTreeMap<Schedule, (u128, Outcome)> = BTreeMap::new();
    Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
        let actors = sched.step_actors();
        let mut m = StepModel::new(ops, replicas, Mutation::None, true);
        let fps: Vec<Footprint> = actors.iter().map(|&p| m.step(p)).collect();
        let out = m.run.outcome();
        let nf = normal_form(&actors, &fps, conflict_dependence);
        let e = by_nf.entry(nf).or_insert_with(|| (0, out.clone()));
        e.0 += 1;
        assert_eq!(
            e.1,
            out,
            "outcomes diverged within one class ({})",
            sched.render()
        );
    });
    let mut explored: BTreeMap<Schedule, (u128, Outcome)> = BTreeMap::new();
    let root = StepModel::new(ops, replicas, Mutation::None, true);
    Explorer::new(conflict_dependence).run(&root, |v| {
        if let Visit::Complete {
            state,
            schedule,
            class_size,
        } = v
        {
            explored.insert(schedule.clone(), (class_size, state.run.outcome()));
        }
    });
    assert_eq!(
        explored, by_nf,
        "explored representatives must equal brute-force classes"
    );
}

#[test]
#[ignore = "full 756,756-schedule exhaustive cross-check; wired into scripts/check.sh --release"]
fn three_puts_two_replicas_full_cross_check() {
    // The release-tier cross-check behind the fast tier's DPOR run: walk
    // the complete space exhaustively, verify every schedule's
    // invariants and classify it by normal form (asserting verdicts are
    // identical within each class), then re-run the explorer and demand
    // it produced exactly those classes with exactly those populations.
    let (ops, replicas) = (3, 2);
    let counts = vec![2 * replicas + 1; ops];
    let mut by_nf: BTreeMap<Schedule, (u128, Outcome)> = BTreeMap::new();
    let mut t = Tally::default();
    let n = Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
        let actors = sched.step_actors();
        let mut m = StepModel::new(ops, replicas, Mutation::None, true);
        let fps: Vec<Footprint> = actors.iter().map(|&p| m.step(p)).collect();
        let out = m.run.outcome();
        check_outcome(&out, &sched.render());
        t.absorb(ops, &out, 1);
        let nf = normal_form(&actors, &fps, conflict_dependence);
        let e = by_nf.entry(nf).or_insert_with(|| (0, out.clone()));
        e.0 += 1;
        assert_eq!(
            e.1,
            out,
            "outcomes diverged within one class ({})",
            sched.render()
        );
    });
    assert_eq!(n, 756_756);
    assert!(t.all_committed > 0, "no schedule committed all three puts");
    assert!(t.aborts > 0, "no schedule aborted a put");
    assert!(t.none_committed > 0, "no schedule aborted every put");

    let root = StepModel::new(ops, replicas, Mutation::None, true);
    let mut classes = 0usize;
    let stats = Explorer::new(conflict_dependence).run(&root, |v| {
        if let Visit::Complete {
            state,
            schedule,
            class_size,
        } = v
        {
            let (count, out) = by_nf
                .get(schedule)
                .expect("explorer visited a schedule that is not a normal form");
            assert_eq!(
                *count,
                class_size,
                "class population mismatch at {}",
                schedule.render()
            );
            assert_eq!(
                out,
                &state.run.outcome(),
                "exhaustive and reduced verdicts differ at {}",
                schedule.render()
            );
            classes += 1;
        }
    });
    assert_eq!(classes, by_nf.len(), "explorer missed brute-force classes");
    assert_eq!(stats.covered, 756_756);
}

// ---------------------------------------------------------------------
// Failure dimensions: primary failover mid-2PC, message loss, and
// message duplication. Every faulted run ends with client retries plus
// the production §4.4 resolution (the new primary settles surviving
// locks through `LockResolution`) and the two-phase rejoin catch-up,
// and must then satisfy the same quiescence and convergence invariants
// as the fault-free sweeps.
// ---------------------------------------------------------------------

/// What the §4.4 settlement decided, per verdict.
struct Settled {
    /// Verdicts settled by commit (commit-if-committed-anywhere fired).
    commits: usize,
    /// Verdicts settled by abort (no committed copy was reported).
    aborts: usize,
}

/// Run the production §4.4 resolution until no lock is left anywhere:
/// each round the acting primary seeds a [`LockResolution`] with its own
/// [`ReplicationEngine::lock_report`], absorbs every other member's, and
/// applies the settled verdicts (commit with the reported timestamp, or
/// abort) to every member. One round settles one attempt per key, so
/// stacked lock states (different ops locked on different replicas)
/// drain over successive rounds — exactly how the secondary lock-timeout
/// path re-triggers resolution in the live system.
fn settle_all(run: &mut Run, acting: usize) -> Settled {
    let mut settled = Settled {
        commits: 0,
        aborts: 0,
    };
    let replicas = run.engines.len();
    for _round in 0..8 {
        let (seed, floor) = run.engines[acting].lock_report(&|k| k == KEY);
        let waiting: BTreeSet<NodeIdx> = (0..replicas)
            .filter(|&r| r != acting)
            .map(|r| NodeIdx(r as u32))
            .collect();
        let mut res = LockResolution::new(waiting, seed, floor);
        for r in (0..replicas).filter(|&r| r != acting) {
            let (locked, max_seq) = run.engines[r].lock_report(&|k| k == KEY);
            res.absorb(NodeIdx(r as u32), locked, max_seq);
        }
        assert!(res.complete(), "every member reported synchronously");
        let (max_seq, verdicts) = res.settle();
        run.engines[acting].observe_seq(max_seq);
        if verdicts.is_empty() {
            return settled;
        }
        for (key, op, verdict) in verdicts {
            let o = run.idx(op);
            match verdict {
                Some(ts) => {
                    settled.commits += 1;
                    for r in 0..replicas {
                        let mut fx = Vec::new();
                        if run.engines[r].on_commit(&key, op, ts, EngineRole::Observer, &mut fx) {
                            run.applied[o] = true;
                        }
                    }
                }
                None => {
                    settled.aborts += 1;
                    for r in 0..replicas {
                        let mut fx = Vec::new();
                        run.engines[r].on_abort(&key, op, Time::MAX, &mut fx);
                    }
                }
            }
        }
    }
    panic!("§4.4 resolution failed to quiesce within 8 rounds");
}

/// §4.3 client retries after a coordinator failure: every put whose
/// client never received a reply re-multicasts its data to the surviving
/// replicas. A retry re-locks wherever the key is free — including on a
/// replica that already committed the attempt, which is what hands the
/// §4.4 resolution its commit-if-committed-anywhere evidence.
fn client_retries(run: &mut Run, survivors: std::ops::Range<usize>) {
    for o in 0..run.replied.len() {
        if run.replied[o] {
            continue;
        }
        for r in survivors.clone() {
            let mut fx = Vec::new();
            run.engines[r].accept(KEY, value_of(o), op_id(o), Time::ZERO, &mut fx);
            for e in fx {
                if let Effect::WriteDone { key, op, .. } = e {
                    let mut sink = Vec::new();
                    run.engines[r].on_written(
                        &key,
                        op,
                        EngineRole::Observer,
                        Time::ZERO,
                        &mut sink,
                    );
                }
            }
        }
    }
}

/// The winning committed copy after resolution, if any.
fn winner_of(run: &Run) -> Option<(Vec<u8>, Timestamp)> {
    run.engines
        .iter()
        .filter_map(|e| e.store().get(KEY))
        .map(|c| (c.value.bytes.to_vec(), c.ts))
        .max_by(|a, b| a.1.cmp(&b.1))
}

/// Phase two of the rejoin: replicas behind the winning copy sync via
/// the recovery path ([`ReplicationEngine::sync_object`]) before they
/// may serve gets again. Returns which replicas needed the sync.
fn catch_up(run: &mut Run, winner: &Option<(Vec<u8>, Timestamp)>) -> Vec<usize> {
    let mut resynced = Vec::new();
    if let Some((bytes, ts)) = winner {
        for r in 0..run.engines.len() {
            if run.engines[r].store().get(KEY).is_none_or(|c| c.ts < *ts) {
                run.engines[r].sync_object(KEY, Value::from_bytes(bytes.clone()), *ts);
                resynced.push(r);
            }
        }
    }
    resynced
}

/// Assert the post-resolution invariants: quiescence (no stranded lock,
/// log, or in-doubt entry anywhere), replica convergence, and no lost
/// update (a commit that reached any replica before the fault survives
/// with a final timestamp at least as new).
fn assert_resolved(run: &Run, applied_pre: &[bool], what: &str) {
    for (r, e) in run.engines.iter().enumerate() {
        let s = e.store();
        assert!(!s.locked(KEY), "stranded lock on replica {r} after {what}");
        assert!(
            s.log().is_empty(),
            "undrained log on replica {r} after {what}"
        );
        assert!(
            s.in_doubt().is_empty(),
            "in-doubt entry left on replica {r} after {what}"
        );
    }
    let finals: Vec<Option<(Vec<u8>, Timestamp)>> = run
        .engines
        .iter()
        .map(|e| e.store().get(KEY).map(|c| (c.value.bytes.to_vec(), c.ts)))
        .collect();
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged after {what}: {finals:?}"
    );
    for (o, &applied) in applied_pre.iter().enumerate() {
        if applied {
            let ts = run.decision[o]
                .flatten()
                .expect("an applied commit implies a commit decision");
            let fin = finals[0]
                .as_ref()
                .unwrap_or_else(|| panic!("applied put {o} vanished after {what}"));
            assert!(
                fin.1 >= ts,
                "lost update: put {o} (ts {ts:?}) was applied but the final copy is older after {what}"
            );
        }
    }
}

/// A put accepted by the new primary while the crashed node is still
/// down: it locks and commits on the surviving replicas only (the new
/// primary's sequence floor comes from the resolution's `observe_seq`),
/// so the rejoiner lags the winning copy until phase two of the rejoin
/// syncs it. Post-resolution the lock must be free everywhere.
fn put_while_down(run: &mut Run) {
    let o = run.decision.len();
    let id = op_id(o);
    let replicas = run.engines.len();
    for r in 1..replicas {
        let mut fx = Vec::new();
        run.engines[r].accept(KEY, value_of(o), id, Time::ZERO, &mut fx);
        assert!(
            run.engines[r]
                .store()
                .pending(KEY)
                .is_some_and(|p| p.op == id),
            "post-resolution lock held on surviving replica {r}"
        );
    }
    let ts = run.engines[1].next_ts(id, PRIMARY);
    for r in 1..replicas {
        let mut fx = Vec::new();
        assert!(
            run.engines[r].on_commit(KEY, id, ts, EngineRole::Observer, &mut fx),
            "surviving replica {r} rejected the new primary's commit"
        );
    }
    run.decision.push(Some(Some(ts)));
    run.replied.push(true);
    run.applied.push(true);
}

/// The failover tail grafted onto an executed schedule prefix: the
/// coordinator's node (hosting replica 0's engine) crashes — its
/// in-memory locks and coordinator records vanish
/// ([`ReplicationEngine::reset`]), its written pendings survive as
/// in-doubt entries, and every in-flight step dies with it. With
/// `write_durable` false the crash lands after the lock ack but before
/// the node's object write (W) completed, so its pending does NOT
/// survive. Unreplied clients retry against the survivors, the new
/// primary (replica 1) runs the production resolution — absorbing the
/// rejoiner's persistent-log report too — and with `down_put` true
/// accepts one more put on the surviving replicas while the node is
/// down, so the rejoin must recover the newer object in phase two.
fn failover_continuation(
    mut run: Run,
    write_durable: bool,
    down_put: bool,
    what: &str,
) -> (Settled, Vec<usize>) {
    let replicas = run.engines.len();
    if !write_durable {
        if let Some(p) = run.engines[0].store_mut().pending_mut(KEY) {
            p.written = false;
        }
    }
    run.engines[0].reset();
    let mut applied_pre = run.applied.clone();

    client_retries(&mut run, 1..replicas);
    let settled = settle_all(&mut run, 1);
    if down_put {
        put_while_down(&mut run);
        applied_pre.push(true);
    }
    let winner = winner_of(&run);
    let behind: Vec<usize> = (0..replicas)
        .filter(|&r| match &winner {
            Some((_, ts)) => run.engines[r].store().get(KEY).is_none_or(|c| c.ts < *ts),
            None => false,
        })
        .collect();
    let resynced = catch_up(&mut run, &winner);
    // Two-phase rejoin ordering: every replica whose state lagged the
    // winner at rejoin time must be caught up in phase two, *before*
    // get-eligibility — a get served in between would have returned a
    // stale or missing object.
    assert_eq!(
        behind, resynced,
        "rejoin phase two must sync exactly the lagging replicas ({what})"
    );
    assert_resolved(&run, &applied_pre, what);
    (settled, resynced)
}

/// One primary-failover run: execute the prefix of `sched` before
/// `crash_at`, then hand the state to [`failover_continuation`].
fn check_failover_schedule(
    ops: usize,
    replicas: usize,
    sched: &Schedule,
    crash_at: usize,
    write_durable: bool,
    down_put: bool,
) -> (Settled, Vec<usize>) {
    let mut run = Run::new(ops, replicas);
    for o in &sched.step_actors()[..crash_at] {
        run.exec(*o, Fault::Deliver, Mutation::None, false);
    }
    let what = format!("{} @ crash {crash_at}", sched.render());
    failover_continuation(run, write_durable, down_put, &what)
}

#[test]
fn primary_failover_mid_2pc_exhaustive() {
    // Every interleaving of two 2-replica puts × every crash point. The
    // sweep must exercise the abort rule and make phase two of the
    // rejoin load-bearing. (With a single peer, a commit that reached
    // any survivor has always also been acknowledged, so the
    // commit-resolution rule is exercised by the 3-replica sweep below.)
    let (ops, replicas) = (2, 2);
    let counts = vec![2 * replicas + 1; ops];
    let mut runs = 0usize;
    let mut resolution_aborts = 0usize;
    let mut primary_rejoined_behind = 0usize;
    Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
        for crash_at in 0..=sched.len() {
            for durable in [true, false] {
                for down_put in [false, true] {
                    let (settled, resynced) =
                        check_failover_schedule(ops, replicas, sched, crash_at, durable, down_put);
                    runs += 1;
                    resolution_aborts += settled.aborts;
                    primary_rejoined_behind += usize::from(resynced.contains(&0));
                }
            }
        }
    });
    assert_eq!(
        runs,
        252 * 11 * 4,
        "C(10,5) schedules x 11 crash points x W durability x down-put"
    );
    assert!(resolution_aborts > 0, "abort-of-undecided-puts never fired");
    assert!(
        primary_rejoined_behind > 0,
        "the crashed primary never rejoined behind — two-phase rejoin was never load-bearing"
    );
}

/// The number of length-`len` delivery sequences over `ops` puts of
/// `steps` steps each (each put contributing at most its budget): the
/// full population the explorer's depth-`len` prefix classes must
/// partition.
fn sequences_of_len(ops: usize, steps: usize, len: usize) -> u128 {
    fn binom(n: usize, k: usize) -> u128 {
        let k = k.min(n - k);
        let mut r: u128 = 1;
        for i in 0..k {
            r = r * (n - i) as u128 / (i + 1) as u128;
        }
        r
    }
    let mut ways = vec![0u128; len + 1];
    ways[0] = 1;
    for _ in 0..ops {
        let mut next = vec![0u128; len + 1];
        for d in 0..=len {
            if ways[d] == 0 {
                continue;
            }
            for c in 0..=steps.min(len - d) {
                next[d + c] += ways[d] * binom(d + c, c);
            }
        }
        ways = next;
    }
    ways[len]
}

#[test]
fn primary_failover_three_replicas_dpor_full() {
    // The space the prefix sweep used to sample: two puts × three
    // replicas under every crash point. The explorer's *prefix* classes
    // make it tractable in full — a crash at depth `d` only observes
    // the state the first `d` deliveries produced, so one
    // representative per prefix class covers every (schedule,
    // crash-point) pair. The per-depth coverage sums prove it: at every
    // depth, Σ (prefix class sizes) must equal the total number of
    // length-d delivery sequences. With two peers, a commit can land on
    // one peer while the other is still locked and the client
    // unreplied — the retry re-lock then carries committed evidence, so
    // this sweep is where commit-if-committed-anywhere must fire.
    let (ops, replicas) = (2, 3);
    let steps = 2 * replicas + 1;
    let root = StepModel::new(ops, replicas, Mutation::None, false);
    let mut covered_by_depth = vec![0u128; ops * steps + 1];
    let mut runs = 0usize;
    let mut resolution_commits = 0usize;
    let stats = Explorer::new(conflict_dependence)
        .prefix_sizes(true)
        .run(&root, |v| {
            if let Visit::Prefix {
                state,
                schedule,
                class_size,
            } = v
            {
                let size = class_size.expect("prefix_sizes is on");
                covered_by_depth[schedule.len()] += size;
                let what = format!("{} @ crash {}", schedule.render(), schedule.len());
                for (durable, down_put) in [(true, false), (true, true), (false, true)] {
                    let (settled, _) =
                        failover_continuation(state.run.clone(), durable, down_put, &what);
                    resolution_commits += settled.commits;
                    runs += 1;
                }
            }
        });
    assert_eq!(stats.covered, Schedule::space(&[steps; 2]));
    for (d, &covered) in covered_by_depth.iter().enumerate() {
        assert_eq!(
            covered,
            sequences_of_len(ops, steps, d),
            "prefix classes must partition the depth-{d} sequences"
        );
    }
    // The whole 3432 × 15 × 3 = 154,440-run space, from a fraction of
    // the runs the old 1000-schedule prefix needed.
    assert!(runs < 45_000, "reduction regressed: {runs} runs");
    assert!(
        resolution_commits > 0,
        "commit-if-committed-anywhere never fired"
    );
}

/// The step a schedule position carries (for skipping `Decide`, which is
/// coordinator-local and has no wire message to fault).
fn step_at(actors: &[usize], pos: usize, replicas: usize) -> Step {
    let o = actors[pos];
    let idx = actors[..pos].iter().filter(|&&x| x == o).count();
    step_of(idx, replicas)
}

#[test]
fn single_message_loss_resolves_without_stranding() {
    // Drop each wire message of each schedule in turn. A lost data copy
    // means the put aborts (its PutAck1 never arrives); a lost
    // commit/abort strands a lock that the production §4.4 resolution
    // must settle, with the phase-two catch-up restoring convergence.
    let (ops, replicas) = (2, 2);
    let counts = vec![2 * replicas + 1; ops];
    let mut stranded_then_resolved = 0usize;
    Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
        let actors = sched.step_actors();
        for pos in 0..actors.len() {
            if step_at(&actors, pos, replicas) == Step::Decide {
                continue;
            }
            let mut run = Run::new(ops, replicas);
            for (i, &o) in actors.iter().enumerate() {
                let fault = if i == pos {
                    Fault::Drop
                } else {
                    Fault::Deliver
                };
                run.exec(o, fault, Mutation::None, false);
            }
            let applied_pre = run.applied.clone();
            if run.engines.iter().any(|e| e.store().locked(KEY)) {
                stranded_then_resolved += 1;
            }
            settle_all(&mut run, 0);
            let winner = winner_of(&run);
            catch_up(&mut run, &winner);
            assert_resolved(
                &run,
                &applied_pre,
                &format!("{} drop@{pos}", sched.render()),
            );
        }
    });
    assert!(
        stranded_then_resolved > 0,
        "no dropped message ever stranded a lock — the sweep is vacuous"
    );
}

#[test]
fn duplicated_messages_are_idempotent() {
    // Deliver each wire message of each schedule twice in turn: a
    // re-lock by the same op refreshes (no duplicate log entry), a
    // re-commit / re-abort is a no-op. The outcome must be
    // byte-identical to the clean run.
    let (ops, replicas) = (2, 2);
    let counts = vec![2 * replicas + 1; ops];
    Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
        let clean = run_schedule(ops, replicas, sched);
        let actors = sched.step_actors();
        for pos in 0..actors.len() {
            if step_at(&actors, pos, replicas) == Step::Decide {
                continue;
            }
            let mut run = Run::new(ops, replicas);
            for (i, &o) in actors.iter().enumerate() {
                let fault = if i == pos { Fault::Dup } else { Fault::Deliver };
                run.exec(o, fault, Mutation::None, false);
            }
            let dup = run.outcome();
            assert_eq!(
                dup.committed,
                clean.committed,
                "duplication changed decisions ({} dup@{pos})",
                sched.render()
            );
            assert_eq!(
                dup.finals,
                clean.finals,
                "duplication changed replica state ({} dup@{pos})",
                sched.render()
            );
            assert!(
                !dup.stranded,
                "duplication stranded a lock ({} dup@{pos})",
                sched.render()
            );
        }
    });
}

// ---------------------------------------------------------------------
// Mutation verification: the invariants must catch seeded protocol
// bugs, and the DPOR reduction must catch everything the exhaustive
// sweep catches — while a deliberately-wrong independence relation
// demonstrably loses a bug (so the Σ-coverage arithmetic alone is NOT
// what makes the reduction sound; the relation is).
// ---------------------------------------------------------------------

#[test]
fn seeded_lock_release_mutation_is_caught() {
    // Sanity check of the checker itself: mutate the abort path to
    // forget the release deliveries and the stranded-lock invariant must
    // fire on some schedule.
    let caught = std::panic::catch_unwind(|| {
        let (ops, replicas) = (2, 3);
        let counts = vec![2 * replicas + 1; ops];
        Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
            let mut run = Run::new(ops, replicas);
            for o in sched.step_actors() {
                run.exec(o, Fault::Deliver, Mutation::SkipAbortRelease, false);
            }
            let out = run.outcome();
            assert!(!out.stranded, "stranded lock after {}", sched.render());
        });
    });
    assert!(
        caught.is_err(),
        "the checker failed to catch the seeded lock-release mutation"
    );
}

#[test]
fn dpor_catches_seeded_lock_release_mutation() {
    // The reduced exploration must catch the same mutant the exhaustive
    // sweep above catches: a stranded outcome is a property of the
    // trace class, so some explored representative must exhibit it.
    let caught = std::panic::catch_unwind(|| {
        let root = StepModel::new(2, 3, Mutation::SkipAbortRelease, false);
        Explorer::new(conflict_dependence).run(&root, |v| {
            if let Visit::Complete {
                state, schedule, ..
            } = v
            {
                let out = state.run.outcome();
                assert!(!out.stranded, "stranded lock after {}", schedule.render());
            }
        });
    });
    assert!(
        caught.is_err(),
        "the DPOR exploration failed to catch the seeded lock-release mutation"
    );
}

#[test]
fn seeded_lock_steal_mutation_is_caught() {
    // The lock-steal mutant needs three replicas to diverge: put B
    // steals A's locks on the peers while A's earlier acks still count,
    // then A steals B's last lock back, mints the newer timestamp, and
    // commits — but B's squat makes A's commit silently fail on one
    // peer while B's older value lands there. Order-dependent, so only
    // some schedules expose it; the exhaustive sweep must find one.
    let caught = std::panic::catch_unwind(|| {
        let (ops, replicas) = (2, 3);
        let counts = vec![2 * replicas + 1; ops];
        Schedule::enumerate(&counts, u128::MAX, &mut |sched| {
            let mut run = Run::new(ops, replicas);
            for o in sched.step_actors() {
                run.exec(o, Fault::Deliver, Mutation::LockSteal, false);
            }
            check_outcome(&run.outcome(), &sched.render());
        });
    });
    assert!(
        caught.is_err(),
        "the checker failed to catch the seeded lock-steal mutation"
    );
}

#[test]
fn dpor_catches_seeded_lock_steal_mutation() {
    // The reduction must not lose the lock-steal divergence: the steal
    // shows up in the stolen replica's signature diff, so the schedules
    // that expose it are not merged into innocent classes.
    let caught = std::panic::catch_unwind(|| {
        let root = StepModel::new(2, 3, Mutation::LockSteal, false);
        Explorer::new(conflict_dependence).run(&root, |v| {
            if let Visit::Complete {
                state, schedule, ..
            } = v
            {
                check_outcome(&state.run.outcome(), &schedule.render());
            }
        });
    });
    assert!(
        caught.is_err(),
        "the DPOR exploration failed to catch the seeded lock-steal mutation"
    );
}

#[test]
fn wrong_independence_relation_misses_lock_steal() {
    // The fixture a wrong relation would miss: declare every pair of
    // steps independent and the explorer still *accounts* for the whole
    // space (Σ class sizes is exactly the multinomial — the coverage
    // arithmetic cannot tell the relation is bogus), but it executes
    // only the one serial schedule, where no lock is ever contended and
    // the lock-steal mutant never fires. This is why the mutation tests
    // above exist: soundness lives in the dependence relation, and only
    // mutants can falsify it.
    fn never(_: &Footprint, _: &Footprint) -> bool {
        false
    }
    let (ops, replicas) = (2, 3);
    let root = StepModel::new(ops, replicas, Mutation::LockSteal, false);
    let mut violations = 0usize;
    let stats = Explorer::new(never).run(&root, |v| {
        if let Visit::Complete { state, .. } = v {
            if outcome_violation(&state.run.outcome()).is_some() {
                violations += 1;
            }
        }
    });
    assert_eq!(
        stats.covered,
        Schedule::space(&[2 * replicas + 1; 2]),
        "even the bogus relation passes the coverage arithmetic"
    );
    assert_eq!(stats.classes, 1, "everything-commutes collapses to serial");
    assert_eq!(
        violations, 0,
        "the wrong relation was supposed to miss the lock-steal divergence"
    );
}

#[test]
fn serial_schedules_always_commit_in_order() {
    // Fully serial executions are the baseline the paper's protocol must
    // preserve: every put commits and the last writer wins.
    for ops in [2usize, 3] {
        let replicas = 3;
        let steps = 2 * replicas + 1;
        let mut actors = Vec::new();
        for o in 0..ops {
            actors.extend(std::iter::repeat_n(o, steps));
        }
        let out = check_schedule(ops, replicas, &Schedule::steps(&actors));
        assert!(out.committed.iter().all(std::option::Option::is_some));
        for fin in &out.finals {
            let (bytes, _) = fin.as_ref().expect("value committed");
            assert_eq!(*bytes, value_of(ops - 1).bytes.to_vec());
        }
    }
}

//! Unit tests for the DPOR independence relation, at two levels.
//!
//! **Engine level** — the ground truth the footprint model must respect:
//! two deliveries are independent iff executing them in either order
//! leaves the production [`TwoPcEngine`] in the identical state. These
//! tests run real delivery pairs both ways on cloned engines and compare
//! the protocol-visible signature byte for byte.
//!
//! **Model level** — the [`Footprint`]/[`conflict_dependence`]
//! abstraction the explorer prunes with: the footprints the scenarios
//! above would produce must classify each pair the same way the engine
//! does. Read/read never conflicts; write/anything on a shared region
//! always does. An under-approximating relation here is what the
//! `wrong_independence_relation_misses_lock_steal` fixture in
//! `lock_interleavings.rs` demonstrates end to end.

use kv_core::{
    conflict_dependence, Effect, EngineCfg, EngineRole, Footprint, LogEntry, OpId,
    ReplicationEngine, StorageCfg, Timestamp, TwoPcEngine, Value,
};
use node_rt::{Ipv4, Time};

fn engine() -> TwoPcEngine {
    TwoPcEngine::new(EngineCfg {
        storage: StorageCfg::default(),
        op_timeout: Some(Time::from_ms(500)),
        inline_commit: false,
        durable_pending: true,
        telemetry: kv_core::TelemetryCfg::default(),
        stale_lock_ttl: None,
    })
}

fn op(o: u8) -> OpId {
    OpId {
        client: Ipv4::new(10, 0, 1, o + 1),
        client_seq: 1,
    }
}

fn val(b: u8) -> Value {
    Value::from_bytes(vec![b; 8])
}

fn ts_of(o: u8, seq: u64) -> Timestamp {
    Timestamp {
        primary_seq: seq,
        primary: Ipv4::new(10, 0, 0, 1),
        client_seq: 1,
        client: Ipv4::new(10, 0, 1, o + 1),
    }
}

/// The protocol-visible state of one engine over `keys`: pending lock
/// holder + written flag, committed bytes + timestamp, and the
/// persistent log. Two engines with equal signatures are
/// indistinguishable to every later delivery.
type Sig = Vec<(
    Option<(OpId, bool)>,
    Option<(Vec<u8>, Timestamp)>,
    Vec<LogEntry>,
)>;

fn sig(e: &TwoPcEngine, keys: &[&str]) -> Sig {
    keys.iter()
        .map(|k| {
            let s = e.store();
            (
                s.pending(k).map(|p| (p.op, p.written)),
                s.get(k).map(|c| (c.value.bytes.to_vec(), c.ts)),
                // Per-key log content: the log is one append-ordered vec
                // for the whole engine, so its *global* order encodes
                // arrival order even for keys that never interact.
                s.log()
                    .iter()
                    .filter(|l| l.key == *k)
                    .cloned()
                    .collect::<Vec<LogEntry>>(),
            )
        })
        .collect()
}

/// Run `a` then `b` and `b` then `a` on clones of `base`; return the two
/// resulting signatures.
fn both_orders(
    base: &TwoPcEngine,
    keys: &[&str],
    a: &dyn Fn(&mut TwoPcEngine, &mut Vec<Effect>),
    b: &dyn Fn(&mut TwoPcEngine, &mut Vec<Effect>),
) -> (Sig, Sig) {
    let mut fx = Vec::new();
    let mut ab = base.clone();
    a(&mut ab, &mut fx);
    b(&mut ab, &mut fx);
    let mut ba = base.clone();
    b(&mut ba, &mut fx);
    a(&mut ba, &mut fx);
    (sig(&ab, keys), sig(&ba, keys))
}

// -------------------------------------------------------------------
// Engine level: real delivery pairs, both orders.
// -------------------------------------------------------------------

#[test]
fn accepts_on_distinct_keys_commute() {
    let base = engine();
    let (ab, ba) = both_orders(
        &base,
        &["a", "b"],
        &|e, fx| e.accept("a", val(b'A'), op(0), Time::ZERO, fx),
        &|e, fx| e.accept("b", val(b'B'), op(1), Time::ZERO, fx),
    );
    assert_eq!(ab, ba, "distinct-key accepts must be order-insensitive");
}

#[test]
fn accepts_on_the_same_key_do_not_commute() {
    // Lock-acquire vs. lock-acquire on one key: the first arriver holds
    // the pending lock, so order is observable — the relation must mark
    // this pair dependent or the explorer would prune a real schedule.
    let base = engine();
    let (ab, ba) = both_orders(
        &base,
        &["obj"],
        &|e, fx| e.accept("obj", val(b'A'), op(0), Time::ZERO, fx),
        &|e, fx| e.accept("obj", val(b'B'), op(1), Time::ZERO, fx),
    );
    assert_ne!(ab, ba, "same-key lock acquisition must be order-sensitive");
}

#[test]
fn commit_and_abort_on_distinct_keys_commute() {
    let mut base = engine();
    let mut fx = Vec::new();
    base.accept("a", val(b'A'), op(0), Time::ZERO, &mut fx);
    base.accept("b", val(b'B'), op(1), Time::ZERO, &mut fx);
    let (ab, ba) = both_orders(
        &base,
        &["a", "b"],
        &|e, fx| {
            e.on_commit("a", op(0), ts_of(0, 1), EngineRole::Observer, fx);
        },
        &|e, fx| {
            e.on_abort("b", op(1), Time::MAX, fx);
        },
    );
    assert_eq!(
        ab, ba,
        "distinct-key commit/abort must be order-insensitive"
    );
}

#[test]
fn commit_and_abort_of_one_put_do_not_commute() {
    // The order-sensitive same-key finish pair: commit-then-abort leaves
    // the value committed (the late abort finds no pending and no-ops),
    // abort-then-commit loses it (the commit finds no pending holder).
    // This is exactly the window a healing partition can reorder, so the
    // relation must keep a put's finishes dependent.
    let mut base = engine();
    let mut fx = Vec::new();
    base.accept("obj", val(b'A'), op(0), Time::ZERO, &mut fx);
    let (ab, ba) = both_orders(
        &base,
        &["obj"],
        &|e, fx| {
            e.on_commit("obj", op(0), ts_of(0, 1), EngineRole::Observer, fx);
        },
        &|e, fx| {
            e.on_abort("obj", op(0), Time::MAX, fx);
        },
    );
    assert_ne!(
        ab, ba,
        "commit vs. abort of one put must be order-sensitive"
    );
}

#[test]
fn commits_of_rival_puts_on_one_key_commute_but_stay_ordered() {
    // Two rounds racing for one key: only the lock holder's commit
    // applies (`store.commit` no-ops when a different op holds the
    // pending lock), so this particular pair happens to commute at the
    // engine level. The footprint model still marks same-key finishes
    // dependent — over-approximating dependence only costs reduction;
    // under-approximating it (the unsound direction) prunes real
    // schedules, which is what the `wrong_independence_relation_*`
    // mutant in `lock_interleavings.rs` demonstrates.
    let mut base = engine();
    let mut fx = Vec::new();
    base.accept("obj", val(b'A'), op(0), Time::ZERO, &mut fx);
    base.accept("obj", val(b'B'), op(1), Time::ZERO, &mut fx);
    let (ab, ba) = both_orders(
        &base,
        &["obj"],
        &|e, fx| {
            e.on_commit("obj", op(0), ts_of(0, 1), EngineRole::Observer, fx);
        },
        &|e, fx| {
            e.on_commit("obj", op(1), ts_of(1, 2), EngineRole::Observer, fx);
        },
    );
    assert_eq!(ab, ba, "rival commits resolve to the lock holder's value");
    // The model keeps them ordered anyway: both write the key's region.
    assert!(conflict_dependence(
        &Footprint::write(0),
        &Footprint::write(0)
    ));
}

#[test]
fn reads_commute_with_everything_that_reads() {
    // Gets never mutate the store: any interleaving of gets (same key or
    // not) around a fixed write history observes identical state.
    let mut e = engine();
    let mut fx = Vec::new();
    e.accept("a", val(b'A'), op(0), Time::ZERO, &mut fx);
    e.on_commit("a", op(0), ts_of(0, 1), EngineRole::Observer, &mut fx);
    let before = sig(&e, &["a", "b"]);
    let g1 = e.store().get("a").map(|c| c.value.bytes.to_vec());
    let g2 = e.store().get("b").map(|c| c.value.bytes.to_vec());
    let g1_again = e.store().get("a").map(|c| c.value.bytes.to_vec());
    assert_eq!(g1, g1_again, "a get is stable across other gets");
    assert_eq!(g2, None);
    assert_eq!(sig(&e, &["a", "b"]), before, "gets leave no footprint");
}

// -------------------------------------------------------------------
// Model level: the footprints those scenarios produce must classify
// identically.
// -------------------------------------------------------------------

#[test]
fn footprint_model_matches_the_engine_verdicts() {
    // Region r = the state accessed at key/replica r. Writers of the
    // scenarios above:
    let w0 = Footprint::write(0); // accept/commit touching region 0
    let w1 = Footprint::write(1); // accept/commit touching region 1
    let r0 = Footprint::read(0); // a get of region 0
    let r1 = Footprint::read(1);

    // Distinct-key accepts / commit-vs-abort: disjoint writes commute.
    assert!(!conflict_dependence(&w0, &w1));
    // Same-key lock acquires / rival commits: overlapping writes don't.
    assert!(conflict_dependence(&w0, &w0));
    // Gets: read/read is independent even on the same region…
    assert!(!conflict_dependence(&r0, &r0));
    assert!(!conflict_dependence(&r0, &r1));
    // …but a read is ordered against a write of its region.
    assert!(conflict_dependence(&r0, &w0));
    assert!(!conflict_dependence(&r0, &w1));
}

#[test]
fn footprint_union_accumulates_both_sets() {
    let mut f = Footprint::read(0);
    f.add_write(1);
    let g = Footprint::write(2);
    let u = f.union(g);
    assert!(u.reads() & 1 != 0, "read of 0 kept");
    assert!(u.writes() & 0b110 == 0b110, "writes of 1 and 2 merged");
    assert!(conflict_dependence(&u, &Footprint::write(0)));
    assert!(conflict_dependence(&u, &Footprint::read(2)));
    assert!(!conflict_dependence(&u, &Footprint::read(3)));
}

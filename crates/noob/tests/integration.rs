//! End-to-end tests of every NOOB configuration: ROG/RAG/RAC access ×
//! primary-only/2PC/quorum/chain replication.

use nice_kv::{ClientOp, OpRecord, Value};
use nice_noob::{Access, NoobCluster, NoobClusterCfg, NoobMode};
use nice_sim::Time;

fn put(key: &str, bytes: &[u8]) -> ClientOp {
    ClientOp::Put {
        key: key.into(),
        value: Value::from_bytes(bytes.to_vec()),
    }
}

fn get(key: &str) -> ClientOp {
    ClientOp::Get { key: key.into() }
}

fn roundtrip_ops(n: usize) -> Vec<ClientOp> {
    let mut ops = Vec::new();
    for i in 0..n {
        ops.push(put(&format!("k{i}"), format!("v{i}").as_bytes()));
        ops.push(get(&format!("k{i}")));
    }
    ops
}

fn assert_roundtrip(c: &NoobCluster, client: usize, n: usize) {
    let recs = &c.client(client).records;
    assert_eq!(recs.len(), 2 * n);
    assert!(recs.iter().all(OpRecord::ok), "ops failed");
    for i in 0..n {
        let r = &recs[2 * i + 1];
        assert_eq!(r.bytes.as_deref(), Some(format!("v{i}").as_bytes()));
    }
}

#[test]
fn rac_primary_only_roundtrip() {
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        8,
        3,
        Access::Rac,
        NoobMode::PrimaryOnly,
        vec![roundtrip_ops(15)],
    ));
    assert!(c.run_until_done(Time::from_secs(30)));
    assert_roundtrip(&c, 0, 15);
}

#[test]
fn rac_two_pc_roundtrip() {
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        8,
        3,
        Access::Rac,
        NoobMode::TwoPc,
        vec![roundtrip_ops(15)],
    ));
    assert!(c.run_until_done(Time::from_secs(30)));
    assert_roundtrip(&c, 0, 15);
}

#[test]
fn rag_primary_only_roundtrip() {
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        8,
        3,
        Access::Rag,
        NoobMode::PrimaryOnly,
        vec![roundtrip_ops(10)],
    ));
    assert!(c.run_until_done(Time::from_secs(30)));
    assert_roundtrip(&c, 0, 10);
    // everything flowed through the gateway
    let gw = c.sim.app::<nice_noob::GatewayApp>(c.gateways[0]);
    assert_eq!(gw.forwarded, 20);
}

#[test]
fn rog_primary_only_roundtrip_forwards() {
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        8,
        3,
        Access::Rog,
        NoobMode::PrimaryOnly,
        vec![roundtrip_ops(15)],
    ));
    assert!(c.run_until_done(Time::from_secs(60)));
    assert_roundtrip(&c, 0, 15);
    // random-node routing must have caused some server-side forwarding
    let fwd: u64 = (0..8).map(|i| c.server(i).counters().forwarded).sum();
    assert!(fwd > 0, "ROG never hit a wrong node in 30 ops?");
}

#[test]
fn quorum_replies_early_and_replicates_fully() {
    let ops: Vec<ClientOp> = (0..5).map(|i| put(&format!("q{i}"), b"data")).collect();
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        8,
        5,
        Access::Rac,
        NoobMode::Quorum { k: 2 },
        vec![ops],
    ));
    assert!(c.run_until_done(Time::from_secs(30)));
    assert!(c.client(0).records.iter().all(OpRecord::ok));
    // background replication still completes everywhere
    c.sim.run_for(Time::from_secs(1));
    for i in 0..5 {
        let key = format!("q{i}");
        let holders = (0..8)
            .filter(|&s| c.server(s).store().get(&key).is_some())
            .count();
        assert_eq!(holders, 5, "{key} fully replicated in the background");
    }
}

#[test]
fn chain_replication_roundtrip() {
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        8,
        3,
        Access::Rac,
        NoobMode::Chain,
        vec![roundtrip_ops(10)],
    ));
    assert!(c.run_until_done(Time::from_secs(30)));
    assert_roundtrip(&c, 0, 10);
    // every replica holds the data (the chain visited them all)
    for i in 0..10 {
        let key = format!("k{i}");
        let holders = (0..8)
            .filter(|&s| c.server(s).store().get(&key).is_some())
            .count();
        assert_eq!(holders, 3, "{key}");
    }
}

#[test]
fn two_pc_replicates_to_all() {
    let ops = vec![put("x", b"xyz")];
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        8,
        3,
        Access::Rac,
        NoobMode::TwoPc,
        vec![ops],
    ));
    assert!(c.run_until_done(Time::from_secs(10)));
    let holders = (0..8)
        .filter(|&s| c.server(s).store().get("x").is_some())
        .count();
    assert_eq!(holders, 3);
}

#[test]
fn primary_only_serves_all_gets_from_primary() {
    let mut all = vec![vec![put("hot", b"v")]];
    for _ in 0..3 {
        all.push((0..20).map(|_| get("hot")).collect());
    }
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        8,
        3,
        Access::Rac,
        NoobMode::PrimaryOnly,
        all,
    ));
    assert!(c.run_until_done(Time::from_secs(60)));
    let primary = c.ring.ring.primary(c.ring.partition_of("hot")).0 as usize;
    let served: Vec<u64> = (0..8).map(|i| c.server(i).counters().gets_served).collect();
    assert!(served[primary] >= 55, "primary served {:?}", served);
    for (i, &s) in served.iter().enumerate() {
        if i != primary {
            assert_eq!(s, 0, "node {i} served gets in primary-only mode");
        }
    }
}

#[test]
fn lb_gets_spread_over_replicas_with_2pc() {
    let mut all = vec![vec![put("hot", b"v")]];
    for _ in 0..3 {
        all.push((0..20).map(|_| get("hot")).collect());
    }
    let mut cfg = NoobClusterCfg::new(8, 3, Access::Rac, NoobMode::TwoPc, all);
    cfg.lb_gets = true;
    cfg.spec.retry_not_found = true; // readers race the seeding put
    let mut c = NoobCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(60)));
    let replicas: Vec<usize> = c
        .ring
        .ring
        .replica_set(c.ring.partition_of("hot"))
        .iter()
        .map(|n| n.0 as usize)
        .collect();
    let busy = replicas
        .iter()
        .filter(|&&i| c.server(i).counters().gets_served > 0)
        .count();
    assert!(busy >= 2, "client-side LB did not spread gets");
}

#[test]
fn multiple_gateways_share_clients() {
    let all: Vec<Vec<ClientOp>> = (0..4).map(|_| roundtrip_ops(5)).collect();
    let mut cfg = NoobClusterCfg::new(8, 3, Access::Rag, NoobMode::PrimaryOnly, all);
    cfg.gateways = 2;
    let mut c = NoobCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(60)));
    for i in 0..4 {
        assert_roundtrip(&c, i, 5);
    }
    let f0 = c.sim.app::<nice_noob::GatewayApp>(c.gateways[0]).forwarded;
    let f1 = c.sim.app::<nice_noob::GatewayApp>(c.gateways[1]).forwarded;
    assert!(f0 > 0 && f1 > 0, "both gateways used: {f0} {f1}");
}

#[test]
fn noob_primary_link_carries_replication_fanout() {
    // The primary sends R-1 = 4 copies of a 256 KiB object: its NIC must
    // transmit ~4x the object size (the Figure 6/7 inefficiency).
    let size = 256 * 1024;
    let ops = vec![ClientOp::Put {
        key: "big".into(),
        value: Value::synthetic(size),
    }];
    let mut c = NoobCluster::build(NoobClusterCfg::new(
        9,
        5,
        Access::Rac,
        NoobMode::PrimaryOnly,
        vec![ops],
    ));
    assert!(c.run_until_done(Time::from_secs(30)));
    let primary = c.ring.ring.primary(c.ring.partition_of("big")).0 as usize;
    let sent = c.sim.host_stats(c.servers[primary]).bytes_sent;
    assert!(
        sent > 4 * size as u64,
        "primary sent only {sent}, expected ~4x{size}"
    );
}

#[test]
fn caching_rac_warms_up() {
    // §2.1 RAC: "the clients cache the metadata of previously accessed
    // objects, and use it to route subsequent requests." Cold accesses go
    // to a random node (one forwarding hop); repeat accesses go straight
    // to the responsible node.
    let mut ops = Vec::new();
    for i in 0..10 {
        ops.push(put(&format!("c{i}"), b"v"));
    }
    // three passes of gets over the same keys: first pass may miss, the
    // rest must all be cache hits
    for _ in 0..3 {
        for i in 0..10 {
            ops.push(get(&format!("c{i}")));
        }
    }
    let mut cfg = NoobClusterCfg::new(8, 3, Access::Rac, NoobMode::PrimaryOnly, vec![ops]);
    cfg.caching_rac = true;
    let mut c = NoobCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(60)));
    let recs = &c.client(0).records;
    assert!(recs.iter().all(OpRecord::ok));
    let (hits, misses) = c.client(0).cache_stats;
    // 10 puts + 30 gets = 40 routing decisions; at most one miss per key
    assert_eq!(hits + misses, 40);
    assert!(misses <= 10, "misses={misses}");
    assert!(hits >= 30, "hits={hits}");
    // forwarding happened only for cold keys that landed on a wrong node
    let fwd: u64 = (0..8).map(|i| c.server(i).counters().forwarded).sum();
    assert!(
        fwd <= misses,
        "forwards ({fwd}) bounded by cold misses ({misses})"
    );
}

#[test]
fn caching_rac_matches_direct_rac_when_warm() {
    // After warmup the caching client routes identically to the
    // warm-cache Direct client: same number of server-side forwards (0).
    let warm_ops: Vec<ClientOp> = (0..5)
        .flat_map(|i| {
            vec![
                put(&format!("w{i}"), b"v"),
                get(&format!("w{i}")),
                get(&format!("w{i}")),
            ]
        })
        .collect();
    let mut cfg = NoobClusterCfg::new(8, 3, Access::Rac, NoobMode::PrimaryOnly, vec![warm_ops]);
    cfg.caching_rac = true;
    let mut c = NoobCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(60)));
    // the second get of each key must be a hit
    let (hits, _) = c.client(0).cache_stats;
    assert!(hits >= 10, "hits={hits}");
}

//! The NOOB storage node: full-membership, end-host replication.
//!
//! Every node knows the complete placement (§2.1 "full-membership model")
//! and implements replication itself: a put received at the primary is
//! copied to each secondary over a separate TCP stream — the same data
//! leaves the primary's NIC R-1 times, which is exactly the inefficiency
//! the paper's Figures 5–7 quantify.
//!
//! The put state machines (2PC, primary-only, quorum) are the shared
//! [`kv_core::ReplicationEngine`] — identical to NICEKV's by
//! construction. This file owns what makes NOOB the baseline: full ring
//! knowledge, request forwarding hops, R-1 unicast data fan-out, and
//! chain replication.

use std::collections::{BTreeSet, HashMap};
use std::path::Path;

use kv_core::{
    Counters, Effect, EngineCfg, EngineRole, Group, MetricsRegistry, ObjectStore,
    ReplicationEngine, StorageCfg, TelemetryCfg, TwoPcEngine, CTRL_COST, CTRL_MSG_BYTES,
    DATA_SEND_COST, DATA_SEND_THRESHOLD, REQ_COST,
};
use nice_kv::{OpId, Timestamp, Value};
use nice_ring::{NodeIdx, PartitionId, PhysicalRing};
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};
use node_rt::{Ipv4, NodeApp, NodeIo, Packet, Time};

use crate::msg::{NoobMode, NoobMsg};

const TOK_CONT_BASE: u64 = 1000;
/// Timer token for abandoning the rejoin sync phase.
const TOK_SYNC_GIVEUP: u64 = 900;
/// How long a rejoining node waits for peer sync responses before
/// serving gets from its own store anyway (every peer may be down).
const SYNC_GIVEUP: Time = Time::from_secs(2);

/// Shared deployment knowledge: the full membership every NOOB node and
/// RAC client holds.
#[derive(Clone)]
pub struct NoobRing {
    /// Placement.
    pub ring: PhysicalRing,
    /// Node addresses, indexed by `NodeIdx`.
    pub addrs: Vec<Ipv4>,
    /// Service port.
    pub port: u16,
}

impl NoobRing {
    /// Partition of a key.
    pub fn partition_of(&self, key: &str) -> PartitionId {
        self.ring.partition_of_key(key.as_bytes())
    }

    /// Address of node `n`; falls back to the unroutable zero address
    /// (a send to it drops silently, degrading one request) if the index
    /// is somehow outside the membership.
    pub fn addr_of(&self, n: NodeIdx) -> Ipv4 {
        self.addrs.get(n.0 as usize).copied().unwrap_or(Ipv4(0))
    }

    /// Primary address for a key.
    pub fn primary_addr(&self, key: &str) -> Ipv4 {
        self.addr_of(self.ring.primary(self.partition_of(key)))
    }

    /// All replica addresses for a key (primary first).
    pub fn replica_addrs(&self, key: &str) -> Vec<Ipv4> {
        self.ring
            .replica_set(self.partition_of(key))
            .iter()
            .map(|&n| self.addr_of(n))
            .collect()
    }
}

enum Cont {
    /// A received message cleared the CPU queue: process it.
    Process { msg: Box<NoobMsg>, src: Ipv4 },
    /// Local write finished: continue the put state machine.
    PrimaryWritten { key: String, op: OpId },
    /// Secondary write finished: ack the primary.
    SecondaryWritten {
        key: String,
        op: OpId,
        primary: Ipv4,
    },
    /// Chain write finished: pass the baton.
    ChainWritten {
        key: String,
        op: OpId,
        remaining: Vec<Ipv4>,
        client: Ipv4,
    },
}

/// The NOOB storage node.
pub struct NoobServerApp {
    ring: NoobRing,
    node: NodeIdx,
    mode: NoobMode,
    tp: Transport,
    engine: TwoPcEngine,
    conts: HashMap<u64, Cont>,
    next_cont: u64,
    /// Peers whose rejoin sync response is still outstanding; while
    /// non-empty, gets are forwarded instead of served locally.
    sync_pending: BTreeSet<NodeIdx>,
    /// WAL records replayed at construction (0 on a cold start).
    recovered: usize,
}

impl NoobServerApp {
    fn engine_cfg(storage: StorageCfg, telemetry: TelemetryCfg) -> EngineCfg {
        EngineCfg {
            storage,
            // The baseline runs no coordinator deadlines, commits
            // inline the moment the primary generates the timestamp,
            // and keeps tentative values in memory only. With no
            // deadline machinery, a lock abandoned by a crashed peer
            // or a given-up client is only ever reclaimed by the TTL;
            // it must outlast the longest client retry gap (2 s fixed,
            // or the chaos harness's 1.6 s cap + 30 % jitter).
            op_timeout: None,
            inline_commit: true,
            durable_pending: false,
            telemetry,
            stale_lock_ttl: Some(Time::from_secs(3)),
        }
    }

    fn from_engine(
        ring: NoobRing,
        node: NodeIdx,
        mode: NoobMode,
        engine: TwoPcEngine,
        recovered: usize,
    ) -> NoobServerApp {
        NoobServerApp {
            tp: Transport::new(ring.port),
            ring,
            node,
            mode,
            engine,
            conts: HashMap::new(),
            next_cont: TOK_CONT_BASE,
            sync_pending: BTreeSet::new(),
            recovered,
        }
    }

    /// A node `node` in the deployment `ring` (memory-only durability
    /// model: the simulator's crash semantics).
    pub fn new(
        ring: NoobRing,
        node: NodeIdx,
        mode: NoobMode,
        storage: StorageCfg,
        telemetry: TelemetryCfg,
    ) -> NoobServerApp {
        let engine = TwoPcEngine::new(Self::engine_cfg(storage, telemetry));
        Self::from_engine(ring, node, mode, engine, 0)
    }

    /// A node backed by a file WAL under `wal_dir`: every ack reaches
    /// stable storage first, and constructing the app replays whatever
    /// the previous incarnation synced — committed objects, the 2PC
    /// persistent-log entries, and in-doubt locks.
    ///
    /// If the WAL cannot be opened (I/O error) the node degrades to the
    /// memory-only model rather than refusing to serve.
    pub fn with_wal(
        ring: NoobRing,
        node: NodeIdx,
        mode: NoobMode,
        storage: StorageCfg,
        telemetry: TelemetryCfg,
        wal_dir: &Path,
    ) -> NoobServerApp {
        let path = wal_dir.join(format!("node-{}.wal", node.0));
        let (engine, recovered) = TwoPcEngine::recover(Self::engine_cfg(storage, telemetry), &path);
        Self::from_engine(ring, node, mode, engine, recovered)
    }

    /// The local store (inspection).
    pub fn store(&self) -> &ObjectStore {
        self.engine.store()
    }

    /// WAL records replayed when this incarnation was built.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Still in the rejoin sync phase (gets are forwarded meanwhile)?
    pub fn is_syncing(&self) -> bool {
        !self.sync_pending.is_empty()
    }

    /// Observable counters (tests and Figure 7's load-ratio measurements).
    pub fn counters(&self) -> Counters {
        self.engine.counters()
    }

    /// The node's full metrics snapshot: engine phase histograms and
    /// WAL facts, protocol counters under `engine.*`, and transport
    /// reliability effort under `transport.*`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = self.engine.metrics();
        self.engine.counters().fold_into(&mut m);
        let tp = self.tp.stats();
        m.add("transport.probes", tp.probes);
        m.add("transport.nacks_sent", tp.nacks_sent);
        m.add("transport.nacks_received", tp.nacks_received);
        m.add("transport.repairs", tp.repairs);
        m.add("transport.syn_retries", tp.syn_retries);
        m
    }

    fn defer(&mut self, ctx: &mut dyn NodeIo, at: Time, cont: Cont) {
        let tok = self.next_cont;
        self.next_cont += 1;
        self.conts.insert(tok, cont);
        ctx.set_timer(at.saturating_sub(ctx.now()), tok);
    }

    fn send(&mut self, ctx: &mut dyn NodeIo, dst: Ipv4, msg: NoobMsg, size: u32) {
        // Symmetric with nice-kv: every sent message costs CPU, and a
        // value-carrying send costs much more than a control message. A
        // NOOB primary pays the data cost R-1 times per put.
        ctx.cpu_work(if size > DATA_SEND_THRESHOLD {
            DATA_SEND_COST
        } else {
            CTRL_COST
        });
        self.tp
            .tcp_send(ctx, dst, self.ring.port, Msg::new(msg, size));
    }

    fn i_am_primary(&self, key: &str) -> bool {
        self.ring.ring.primary(self.ring.partition_of(key)) == self.node
    }

    /// Is this node in the key's replica set? (exposed for tests)
    pub fn is_replica_for(&self, key: &str) -> bool {
        self.ring
            .ring
            .is_replica(self.ring.partition_of(key), self.node)
    }

    /// The engine's view of a key's replica group: every replica that
    /// must ack, excluding this node.
    fn group_for(&self, key: &str, ctx: &dyn NodeIo) -> Group {
        Group {
            peers: self
                .ring
                .ring
                .replica_set(self.ring.partition_of(key))
                .iter()
                .copied()
                .filter(|&n| n != self.node)
                .collect(),
            self_addr: ctx.ip(),
        }
    }

    /// Turn engine effects into NOOB wire traffic: timestamp and reply
    /// distribution is R-1 unicast TCP streams. `ack_dst` is where a
    /// phase-2 ack goes (the coordinator we just heard from).
    fn apply_effects(&mut self, fx: Vec<Effect>, ack_dst: Ipv4, ctx: &mut dyn NodeIo) {
        for e in fx {
            match e {
                Effect::Commit { key, op, ts } => {
                    let replicas = self.ring.replica_addrs(&key);
                    for dst in replicas.get(1..).unwrap_or(&[]) {
                        self.send(
                            ctx,
                            *dst,
                            NoobMsg::RepTs {
                                key: key.clone(),
                                op,
                                ts,
                            },
                            CTRL_MSG_BYTES,
                        );
                    }
                }
                Effect::Reply { client, op, ok } => {
                    self.send(ctx, client, NoobMsg::PutReply { op, ok }, CTRL_MSG_BYTES);
                }
                Effect::Ack2 { key, op } => {
                    let from = self.node;
                    self.send(
                        ctx,
                        ack_dst,
                        NoobMsg::RepAck2 { key, op, from },
                        CTRL_MSG_BYTES,
                    );
                }
                Effect::Redrive { key, op, value } => self.on_put(key, value, op, 0, ctx),
                // No deadlines, no multicast loopback, no failure
                // detector in the baseline.
                Effect::WriteDone { .. }
                | Effect::Ack1 { .. }
                | Effect::Abort { .. }
                | Effect::Deadline { .. }
                | Effect::Unresponsive { .. } => {}
            }
        }
    }

    // ---------------------------------------------------------------
    // Put path
    // ---------------------------------------------------------------

    fn on_put(&mut self, key: String, value: Value, op: OpId, hops: u8, ctx: &mut dyn NodeIo) {
        if !self.i_am_primary(&key) {
            // ROG delivered this to a random node: forward to the primary
            // (the second extra hop).
            if hops < 2 {
                let dst = self.ring.primary_addr(&key);
                let size = value.size() + key.len() as u32 + CTRL_MSG_BYTES;
                self.engine.counters_mut().forwarded += 1;
                self.send(
                    ctx,
                    dst,
                    NoobMsg::Put {
                        key,
                        value,
                        op,
                        hops: hops + 1,
                    },
                    size,
                );
            }
            return;
        }
        self.engine.counters_mut().puts_coordinated += 1;
        if self.engine.op_settled(op) {
            // The attempt already committed here (its reply was lost) or
            // the client has long moved past it: answer directly. Starting
            // a fresh round would re-commit the old value under a new,
            // higher timestamp — resurrecting it over later writes.
            self.send(
                ctx,
                op.client,
                NoobMsg::PutReply { op, ok: true },
                CTRL_MSG_BYTES,
            );
            return;
        }
        let replicas = self
            .ring
            .ring
            .replica_set(self.ring.partition_of(&key))
            .to_vec();
        match self.mode {
            NoobMode::Chain => {
                if self.engine.coordinating(&key, op) {
                    return; // duplicate (client retry while in flight)
                }
                // Write locally, then forward down the chain. The inert
                // coordinator record only absorbs duplicate retries.
                self.engine
                    .coordinate(&key, op, op.client, Some(usize::MAX));
                let size = value.size();
                let done = self.engine.stage_write(ctx.now(), size);
                let remaining: Vec<Ipv4> = replicas
                    .get(1..)
                    .unwrap_or(&[])
                    .iter()
                    .map(|&n| self.ring.addr_of(n))
                    .collect();
                let ts = self.engine.next_ts(op, ctx.ip());
                self.engine.sync_object(&key, value, ts);
                self.defer(
                    ctx,
                    done,
                    Cont::ChainWritten {
                        key,
                        op,
                        remaining,
                        client: op.client,
                    },
                );
            }
            NoobMode::TwoPc => {
                // With no coordinator deadlines, client retries are the
                // only thing that completes a round disturbed by a fault.
                // A round stuck in phase 2 (a secondary restarted and lost
                // its tentative copy, or an ack was lost) re-sends its
                // commit timestamp; a round stuck in phase 1 falls through
                // to re-prepare — the lock refreshes and the data fans out
                // again.
                if let Some(ts) = self.engine.round_commit_ts(&key, op) {
                    for n in replicas.get(1..).unwrap_or(&[]) {
                        let dst = self.ring.addr_of(*n);
                        self.send(
                            ctx,
                            dst,
                            NoobMsg::RepTs {
                                key: key.clone(),
                                op,
                                ts,
                            },
                            CTRL_MSG_BYTES,
                        );
                    }
                    return;
                }
                // 2PC: lock+log first; conflicting writers queue until the
                // current put commits, then come back as a Redrive.
                let mut fx = Vec::new();
                if !self
                    .engine
                    .prepare(&key, value.clone(), op, ctx.now(), &mut fx)
                {
                    return;
                }
                self.engine.coordinate(&key, op, op.client, None);
                for e in &fx {
                    if let Effect::WriteDone { at, .. } = e {
                        let at = *at;
                        self.defer(
                            ctx,
                            at,
                            Cont::PrimaryWritten {
                                key: key.clone(),
                                op,
                            },
                        );
                    }
                }
                self.fan_out(&key, &value, op, true, &replicas, ctx);
            }
            NoobMode::PrimaryOnly | NoobMode::Quorum { .. } => {
                if self.engine.coordinating(&key, op) {
                    return; // duplicate (client retry while in flight)
                }
                let quorum = match self.mode {
                    NoobMode::Quorum { k } => k.clamp(1, replicas.len()),
                    _ => replicas.len(),
                };
                self.engine.coordinate(&key, op, op.client, Some(quorum));
                // Durable before acking: the direct path forces the object
                // write itself (2PC forces the log entry instead).
                let ts = self.engine.next_ts(op, ctx.ip());
                let done = self.engine.apply_copy(&key, value.clone(), ts, ctx.now());
                self.defer(
                    ctx,
                    done,
                    Cont::PrimaryWritten {
                        key: key.clone(),
                        op,
                    },
                );
                self.fan_out(&key, &value, op, false, &replicas, ctx);
            }
        }
    }

    /// Fan the data out to every secondary over unicast TCP — the NOOB
    /// network inefficiency.
    fn fan_out(
        &mut self,
        key: &str,
        value: &Value,
        op: OpId,
        two_pc: bool,
        replicas: &[NodeIdx],
        ctx: &mut dyn NodeIo,
    ) {
        let msg_size = value.size() + key.len() as u32 + CTRL_MSG_BYTES;
        for n in replicas.get(1..).unwrap_or(&[]) {
            let dst = self.ring.addr_of(*n);
            self.send(
                ctx,
                dst,
                NoobMsg::RepData {
                    key: key.to_owned(),
                    value: value.clone(),
                    op,
                    two_pc,
                },
                msg_size,
            );
        }
    }

    fn on_rep_data(
        &mut self,
        key: String,
        value: Value,
        op: OpId,
        two_pc: bool,
        src: Ipv4,
        ctx: &mut dyn NodeIo,
    ) {
        self.engine.counters_mut().replica_writes += 1;
        let done = if two_pc {
            let mut fx = Vec::new();
            self.engine.accept(&key, value, op, ctx.now(), &mut fx);
            fx.iter()
                .find_map(|e| match e {
                    Effect::WriteDone { at, .. } => Some(*at),
                    _ => None,
                })
                .unwrap_or_else(|| ctx.now())
        } else {
            // Plain replication: store immediately with the op's identity.
            let ts = Timestamp {
                primary_seq: op.client_seq,
                primary: src,
                client_seq: op.client_seq,
                client: op.client,
            };
            self.engine.apply_copy(&key, value, ts, ctx.now())
        };
        self.defer(
            ctx,
            done,
            Cont::SecondaryWritten {
                key,
                op,
                primary: src,
            },
        );
    }

    fn on_ack1(&mut self, key: String, op: OpId, from: NodeIdx, ctx: &mut dyn NodeIo) {
        let g = self.group_for(&key, ctx);
        let me = ctx.ip();
        let mut fx = Vec::new();
        self.engine.on_ack1(&key, op, from, &g, ctx.now(), &mut fx);
        self.apply_effects(fx, me, ctx);
    }

    fn on_ack2(&mut self, key: String, op: OpId, from: NodeIdx, ctx: &mut dyn NodeIo) {
        let g = self.group_for(&key, ctx);
        let me = ctx.ip();
        let mut fx = Vec::new();
        self.engine.on_ack2(&key, op, from, Some(&g), &mut fx);
        self.apply_effects(fx, me, ctx);
    }

    // ---------------------------------------------------------------
    // Get path
    // ---------------------------------------------------------------

    fn on_get(&mut self, key: String, op: OpId, hops: u8, ctx: &mut dyn NodeIo) {
        if !self.sync_pending.is_empty() && hops < 2 {
            // Mid-rejoin: the local store may be missing writes acked
            // while this node was down. Push the read to a peer replica
            // until the sync phase completes (§4.4 two-phase rejoin —
            // no reads from a node still catching up).
            if let Some(dst) = self.peer_replica_addr(&key) {
                self.engine.counters_mut().forwarded += 1;
                self.send(
                    ctx,
                    dst,
                    NoobMsg::Get {
                        key,
                        op,
                        hops: hops + 1,
                    },
                    CTRL_MSG_BYTES,
                );
                return;
            }
        }
        if let Some(c) = self.engine.store().get(&key) {
            let size = c.value.size() + CTRL_MSG_BYTES;
            let value = Some(c.value.clone());
            self.engine.counters_mut().gets_served += 1;
            self.send(ctx, op.client, NoobMsg::GetReply { op, value }, size);
            return;
        }
        if !self.i_am_primary(&key) && hops < 2 {
            self.engine.counters_mut().forwarded += 1;
            let dst = self.ring.primary_addr(&key);
            self.send(
                ctx,
                dst,
                NoobMsg::Get {
                    key,
                    op,
                    hops: hops + 1,
                },
                CTRL_MSG_BYTES,
            );
            return;
        }
        self.send(
            ctx,
            op.client,
            NoobMsg::GetReply { op, value: None },
            CTRL_MSG_BYTES,
        );
    }

    // ---------------------------------------------------------------
    // Rejoin sync
    // ---------------------------------------------------------------

    /// The first replica of `key` that is not this node, if any.
    fn peer_replica_addr(&self, key: &str) -> Option<Ipv4> {
        self.ring
            .ring
            .replica_set(self.ring.partition_of(key))
            .iter()
            .find(|&&n| n != self.node)
            .map(|&n| self.ring.addr_of(n))
    }

    /// A rejoining peer asks for everything it replicates: answer with
    /// this node's committed objects in the requester's partitions.
    fn on_sync_req(&mut self, from: NodeIdx, src: Ipv4, ctx: &mut dyn NodeIo) {
        let items: Vec<(String, Value, Timestamp)> = self
            .engine
            .store()
            .iter()
            .filter(|(k, _)| self.ring.ring.is_replica(self.ring.partition_of(k), from))
            .map(|(k, c)| (k.clone(), c.value.clone(), c.ts))
            .collect();
        let size = items
            .iter()
            .map(|(k, v, _)| v.size() + k.len() as u32)
            .sum::<u32>()
            + CTRL_MSG_BYTES;
        self.send(ctx, src, NoobMsg::SyncResp { items }, size);
    }

    /// A peer's sync answer: ordered bulk apply (newer local versions
    /// win), then mark that peer caught-up.
    fn on_sync_resp(
        &mut self,
        items: Vec<(String, Value, Timestamp)>,
        src: Ipv4,
        ctx: &mut dyn NodeIo,
    ) {
        self.engine.ingest(ctx.now(), items);
        if let Some(pos) = self.ring.addrs.iter().position(|&a| a == src) {
            self.sync_pending.remove(&NodeIdx(pos as u32));
        }
    }

    // ---------------------------------------------------------------
    // Plumbing
    // ---------------------------------------------------------------

    fn on_noob(&mut self, msg: NoobMsg, src: Ipv4, ctx: &mut dyn NodeIo) {
        match msg {
            NoobMsg::Put {
                key,
                value,
                op,
                hops,
            } => self.on_put(key, value, op, hops, ctx),
            NoobMsg::Get { key, op, hops } => self.on_get(key, op, hops, ctx),
            NoobMsg::RepData {
                key,
                value,
                op,
                two_pc,
            } => self.on_rep_data(key, value, op, two_pc, src, ctx),
            NoobMsg::RepAck1 { key, op, from } => self.on_ack1(key, op, from, ctx),
            NoobMsg::RepTs { key, op, ts } => {
                let mut fx = Vec::new();
                self.engine
                    .on_commit(&key, op, ts, EngineRole::Peer, &mut fx);
                self.apply_effects(fx, src, ctx);
            }
            NoobMsg::RepAck2 { key, op, from } => self.on_ack2(key, op, from, ctx),
            NoobMsg::ChainPut {
                key,
                value,
                op,
                remaining,
                client,
            } => {
                self.engine.counters_mut().replica_writes += 1;
                let ts = Timestamp {
                    primary_seq: op.client_seq,
                    primary: client,
                    client_seq: op.client_seq,
                    client,
                };
                let done = self.engine.apply_copy(&key, value, ts, ctx.now());
                self.defer(
                    ctx,
                    done,
                    Cont::ChainWritten {
                        key,
                        op,
                        remaining,
                        client,
                    },
                );
            }
            NoobMsg::SyncReq { from } => self.on_sync_req(from, src, ctx),
            NoobMsg::SyncResp { items } => self.on_sync_resp(items, src, ctx),
            NoobMsg::PutReply { .. } | NoobMsg::GetReply { .. } => {}
        }
    }

    fn on_cont(&mut self, cont: Cont, ctx: &mut dyn NodeIo) {
        match cont {
            Cont::Process { msg, src } => self.on_noob(*msg, src, ctx),
            Cont::PrimaryWritten { key, op } => {
                let g = self.group_for(&key, ctx);
                let me = ctx.ip();
                let mut fx = Vec::new();
                self.engine
                    .on_written(&key, op, EngineRole::Primary(&g), ctx.now(), &mut fx);
                self.apply_effects(fx, me, ctx);
            }
            Cont::SecondaryWritten { key, op, primary } => {
                let from = self.node;
                self.send(
                    ctx,
                    primary,
                    NoobMsg::RepAck1 { key, op, from },
                    CTRL_MSG_BYTES,
                );
            }
            Cont::ChainWritten {
                key,
                op,
                mut remaining,
                client,
            } => {
                if remaining.is_empty() {
                    // tail: acknowledge the client
                    self.send(
                        ctx,
                        client,
                        NoobMsg::PutReply { op, ok: true },
                        CTRL_MSG_BYTES,
                    );
                } else {
                    let next = remaining.remove(0);
                    let value = self
                        .engine
                        .store()
                        .get(&key)
                        .map_or_else(|| Value::synthetic(0), |c| c.value.clone());
                    let size = value.size() + key.len() as u32 + CTRL_MSG_BYTES;
                    self.send(
                        ctx,
                        next,
                        NoobMsg::ChainPut {
                            key,
                            value,
                            op,
                            remaining,
                            client,
                        },
                        size,
                    );
                }
            }
        }
    }

    /// CPU cost of processing one message (see `nice_kv::server`).
    fn msg_cost(msg: &NoobMsg) -> Time {
        match msg {
            NoobMsg::Put { .. }
            | NoobMsg::Get { .. }
            | NoobMsg::RepData { .. }
            | NoobMsg::ChainPut { .. } => REQ_COST,
            _ => CTRL_COST,
        }
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut dyn NodeIo) {
        for ev in events {
            if let TransportEvent::Delivered { from, msg, .. } = ev {
                if let Some(m) = msg.downcast::<NoobMsg>() {
                    let m = m.clone();
                    let cost = Self::msg_cost(&m);
                    let tok = self.next_cont;
                    self.next_cont += 1;
                    self.conts.insert(
                        tok,
                        Cont::Process {
                            msg: Box::new(m),
                            src: from.0,
                        },
                    );
                    ctx.cpu_defer(cost, tok);
                }
            }
        }
    }
}

impl NodeApp for NoobServerApp {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut dyn NodeIo) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut dyn NodeIo) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if token == TOK_SYNC_GIVEUP {
            // Peers never answered (all down, or the nemesis ate every
            // exchange): stop forwarding and serve what the WAL replay
            // restored rather than going silent forever.
            self.sync_pending.clear();
            return;
        }
        if let Some(cont) = self.conts.remove(&token) {
            self.on_cont(cont, ctx);
        }
    }

    fn on_crash(&mut self) {
        self.tp.on_crash();
        self.engine.reset();
        self.conts.clear();
        self.sync_pending.clear();
    }

    fn on_restart(&mut self, ctx: &mut dyn NodeIo) {
        // Two-phase rejoin, data phase: ask every peer for the committed
        // objects this node replicates. WAL replay already restored
        // everything this node acked; the sync fills in what the cluster
        // acked while it was down. Gets are forwarded until the answers
        // arrive (or the give-up timer concedes the peers are gone).
        let me = self.node;
        let peers: Vec<(NodeIdx, Ipv4)> = self
            .ring
            .addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| (NodeIdx(i as u32), addr))
            .filter(|&(n, _)| n != me)
            .collect();
        for (n, addr) in peers {
            self.sync_pending.insert(n);
            self.send(ctx, addr, NoobMsg::SyncReq { from: me }, CTRL_MSG_BYTES);
        }
        if !self.sync_pending.is_empty() {
            ctx.set_timer(SYNC_GIVEUP, TOK_SYNC_GIVEUP);
        }
    }
}

//! The NOOB storage node: full-membership, end-host replication.
//!
//! Every node knows the complete placement (§2.1 "full-membership model")
//! and implements replication itself: a put received at the primary is
//! copied to each secondary over a separate TCP stream — the same data
//! leaves the primary's NIC R-1 times, which is exactly the inefficiency
//! the paper's Figures 5–7 quantify.

use std::collections::{HashMap, HashSet};

use nice_kv::{ObjectStore, OpId, StorageCfg, Timestamp, Value};
use nice_ring::{NodeIdx, PartitionId, PhysicalRing};
use nice_sim::{App, Ctx, Ipv4, Packet, Time};
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};

use crate::msg::{NoobMode, NoobMsg};

const TOK_CONT_BASE: u64 = 1000;
const CTRL_MSG_BYTES: u32 = 64;
/// App-level CPU cost of serving one client request (see
/// `nice_kv::server` — calibrated identically so comparisons are fair).
const REQ_COST: Time = Time::from_us(300);
/// App-level CPU cost of one small control message.
const CTRL_COST: Time = Time::from_us(15);
/// App-level CPU cost of *sending* one value-carrying message (see
/// `nice_kv::server`): the NOOB primary pays this R-1 times per put.
const DATA_SEND_COST: Time = Time::from_us(100);
/// Messages larger than this pay [`DATA_SEND_COST`] on send.
const DATA_SEND_THRESHOLD: u32 = 512;

/// Shared deployment knowledge: the full membership every NOOB node and
/// RAC client holds.
#[derive(Clone)]
pub struct NoobRing {
    /// Placement.
    pub ring: PhysicalRing,
    /// Node addresses, indexed by `NodeIdx`.
    pub addrs: Vec<Ipv4>,
    /// Service port.
    pub port: u16,
}

impl NoobRing {
    /// Partition of a key.
    pub fn partition_of(&self, key: &str) -> PartitionId {
        self.ring.partition_of_key(key.as_bytes())
    }

    /// Primary address for a key.
    pub fn primary_addr(&self, key: &str) -> Ipv4 {
        self.addrs[self.ring.primary(self.partition_of(key)).0 as usize]
    }

    /// All replica addresses for a key (primary first).
    pub fn replica_addrs(&self, key: &str) -> Vec<Ipv4> {
        self.ring
            .replica_set(self.partition_of(key))
            .iter()
            .map(|n| self.addrs[n.0 as usize])
            .collect()
    }
}

enum Cont {
    /// A received message cleared the CPU queue: process it.
    Process { msg: Box<NoobMsg>, src: Ipv4 },
    /// Local write finished: continue the put state machine.
    PrimaryWritten { key: String, op: OpId },
    /// Secondary write finished: ack the primary.
    SecondaryWritten {
        key: String,
        op: OpId,
        primary: Ipv4,
        two_pc: bool,
    },
    /// Chain write finished: pass the baton.
    ChainWritten {
        key: String,
        op: OpId,
        remaining: Vec<Ipv4>,
        client: Ipv4,
    },
}

struct PutState {
    client: Ipv4,
    acks1: HashSet<NodeIdx>,
    acks2: HashSet<NodeIdx>,
    self_written: bool,
    ts_sent: bool,
    replied: bool,
    needed: usize,
    quorum_k: usize,
}

/// Observable counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoobCounters {
    /// Gets served from the local store.
    pub gets_served: u64,
    /// Requests forwarded to the responsible node (ROG extra hop).
    pub forwarded: u64,
    /// Puts coordinated as primary.
    pub puts_coordinated: u64,
    /// Replica writes performed as secondary.
    pub replica_writes: u64,
    /// Internal invariant violations survived without panicking;
    /// nonzero indicates a protocol bug.
    pub internal_errors: u64,
}

/// The NOOB storage node.
pub struct NoobServerApp {
    ring: NoobRing,
    node: NodeIdx,
    mode: NoobMode,
    tp: Transport,
    store: ObjectStore,
    puts: HashMap<(String, OpId), PutState>,
    /// Puts waiting for a lock on their key (2PC serializes conflicting
    /// writers at the primary).
    waiting: HashMap<String, Vec<(Value, OpId)>>,
    conts: HashMap<u64, Cont>,
    next_cont: u64,
    primary_seq: u64,
    /// Counters for tests and Figure 7's load-ratio measurements.
    pub counters: NoobCounters,
}

impl NoobServerApp {
    /// A node `node` in the deployment `ring`.
    pub fn new(
        ring: NoobRing,
        node: NodeIdx,
        mode: NoobMode,
        storage: StorageCfg,
    ) -> NoobServerApp {
        NoobServerApp {
            tp: Transport::new(ring.port),
            ring,
            node,
            mode,
            store: ObjectStore::new(storage),
            puts: HashMap::new(),
            waiting: HashMap::new(),
            conts: HashMap::new(),
            next_cont: TOK_CONT_BASE,
            primary_seq: 0,
            counters: NoobCounters::default(),
        }
    }

    /// The local store (inspection).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    fn defer(&mut self, ctx: &mut Ctx, at: Time, cont: Cont) {
        let tok = self.next_cont;
        self.next_cont += 1;
        self.conts.insert(tok, cont);
        ctx.set_timer(at.saturating_sub(ctx.now()), tok);
    }

    fn send(&mut self, ctx: &mut Ctx, dst: Ipv4, msg: NoobMsg, size: u32) {
        // Symmetric with nice-kv: every sent message costs CPU, and a
        // value-carrying send costs much more than a control message. A
        // NOOB primary pays the data cost R-1 times per put.
        ctx.cpu_work(if size > DATA_SEND_THRESHOLD {
            DATA_SEND_COST
        } else {
            CTRL_COST
        });
        self.tp
            .tcp_send(ctx, dst, self.ring.port, Msg::new(msg, size));
    }

    fn i_am_primary(&self, key: &str) -> bool {
        self.ring.ring.primary(self.ring.partition_of(key)) == self.node
    }

    /// Is this node in the key's replica set? (exposed for tests)
    pub fn is_replica_for(&self, key: &str) -> bool {
        self.ring
            .ring
            .is_replica(self.ring.partition_of(key), self.node)
    }

    // ---------------------------------------------------------------
    // Put path
    // ---------------------------------------------------------------

    fn on_put(&mut self, key: String, value: Value, op: OpId, hops: u8, ctx: &mut Ctx) {
        if !self.i_am_primary(&key) {
            // ROG delivered this to a random node: forward to the primary
            // (the second extra hop).
            if hops < 2 {
                let dst = self.ring.primary_addr(&key);
                let size = value.size() + key.len() as u32 + 64;
                self.counters.forwarded += 1;
                self.send(
                    ctx,
                    dst,
                    NoobMsg::Put {
                        key,
                        value,
                        op,
                        hops: hops + 1,
                    },
                    size,
                );
            }
            return;
        }
        self.counters.puts_coordinated += 1;
        let k = (key.clone(), op);
        if self.puts.contains_key(&k) {
            return; // duplicate (client retry while in flight)
        }
        let replicas = self
            .ring
            .ring
            .replica_set(self.ring.partition_of(&key))
            .to_vec();
        let (needed, quorum_k) = match self.mode {
            NoobMode::PrimaryOnly | NoobMode::TwoPc | NoobMode::Chain => {
                (replicas.len() - 1, replicas.len())
            }
            NoobMode::Quorum { k } => (replicas.len() - 1, k.clamp(1, replicas.len())),
        };
        self.puts.insert(
            k,
            PutState {
                client: op.client,
                acks1: HashSet::new(),
                acks2: HashSet::new(),
                self_written: false,
                ts_sent: false,
                replied: false,
                needed,
                quorum_k,
            },
        );
        match self.mode {
            NoobMode::Chain => {
                // Write locally, then forward down the chain.
                let size = value.size();
                self.store.write_delay(ctx.now(), 100, true);
                let done = self.store.write_delay(ctx.now(), size, false);
                let remaining: Vec<Ipv4> = replicas[1..]
                    .iter()
                    .map(|n| self.ring.addrs[n.0 as usize])
                    .collect();
                let ts = self.next_ts(op, ctx);
                self.store.commit_direct(&key, value.clone(), ts);
                self.defer(
                    ctx,
                    done,
                    Cont::ChainWritten {
                        key,
                        op,
                        remaining,
                        client: op.client,
                    },
                );
            }
            _ => {
                let two_pc = self.mode == NoobMode::TwoPc;
                // Local write (2PC: lock+log first; conflicting writers
                // queue until the current put commits).
                if two_pc {
                    if !self.store.lock(&key, op, value.clone(), ctx.now()) {
                        self.puts.remove(&(key.clone(), op));
                        let q = self.waiting.entry(key).or_default();
                        if !q.iter().any(|(_, o)| *o == op) {
                            q.push((value, op));
                        }
                        return;
                    }
                    self.store.write_delay(ctx.now(), 100, true);
                }
                let size = value.size();
                // Durable before acking: non-2PC modes force the object
                // write itself (2PC already forced the log entry).
                let done = self.store.write_delay(ctx.now(), size, !two_pc);
                if !two_pc {
                    let ts = self.next_ts(op, ctx);
                    self.store.commit_direct(&key, value.clone(), ts);
                }
                self.defer(
                    ctx,
                    done,
                    Cont::PrimaryWritten {
                        key: key.clone(),
                        op,
                    },
                );
                // Fan the data out to every secondary over unicast TCP —
                // the NOOB network inefficiency.
                let msg_size = size + key.len() as u32 + 64;
                for n in &replicas[1..] {
                    let dst = self.ring.addrs[n.0 as usize];
                    self.send(
                        ctx,
                        dst,
                        NoobMsg::RepData {
                            key: key.clone(),
                            value: value.clone(),
                            op,
                            two_pc,
                        },
                        msg_size,
                    );
                }
            }
        }
    }

    fn next_ts(&mut self, op: OpId, ctx: &mut Ctx) -> Timestamp {
        self.primary_seq += 1;
        Timestamp {
            primary_seq: self.primary_seq,
            primary: ctx.ip(),
            client_seq: op.client_seq,
            client: op.client,
        }
    }

    fn on_rep_data(
        &mut self,
        key: String,
        value: Value,
        op: OpId,
        two_pc: bool,
        src: Ipv4,
        ctx: &mut Ctx,
    ) {
        self.counters.replica_writes += 1;
        if two_pc {
            self.store.lock(&key, op, value.clone(), ctx.now());
            self.store.write_delay(ctx.now(), 100, true);
        }
        let size = value.size();
        let done = self.store.write_delay(ctx.now(), size, !two_pc);
        if !two_pc {
            // Plain replication: store immediately with the op's identity.
            let ts = Timestamp {
                primary_seq: op.client_seq,
                primary: src,
                client_seq: op.client_seq,
                client: op.client,
            };
            self.store.commit_direct(&key, value, ts);
        }
        self.defer(
            ctx,
            done,
            Cont::SecondaryWritten {
                key,
                op,
                primary: src,
                two_pc,
            },
        );
    }

    fn on_ack1(&mut self, key: String, op: OpId, from: NodeIdx, ctx: &mut Ctx) {
        let k = (key.clone(), op);
        let Some(st) = self.puts.get_mut(&k) else {
            return;
        };
        st.acks1.insert(from);
        self.advance_put(&key, op, ctx);
    }

    fn on_ack2(&mut self, key: String, op: OpId, from: NodeIdx, ctx: &mut Ctx) {
        let k = (key.clone(), op);
        let Some(st) = self.puts.get_mut(&k) else {
            return;
        };
        st.acks2.insert(from);
        self.advance_put(&key, op, ctx);
    }

    fn advance_put(&mut self, key: &str, op: OpId, ctx: &mut Ctx) {
        let k = (key.to_owned(), op);
        let Some(st) = self.puts.get(&k) else {
            return;
        };
        if !st.self_written {
            return;
        }
        match self.mode {
            NoobMode::PrimaryOnly => {
                if st.acks1.len() >= st.needed && !st.replied {
                    let client = st.client;
                    self.puts.remove(&k);
                    self.send(
                        ctx,
                        client,
                        NoobMsg::PutReply { op, ok: true },
                        CTRL_MSG_BYTES,
                    );
                }
            }
            NoobMode::Quorum { .. } => {
                // self counts toward the quorum
                let have = st.acks1.len() + 1;
                let reply_now = have >= st.quorum_k && !st.replied;
                let finished = st.acks1.len() >= st.needed;
                let client = st.client;
                if reply_now {
                    match self.puts.get_mut(&k) {
                        Some(st) => st.replied = true,
                        None => {
                            self.counters.internal_errors += 1;
                            return;
                        }
                    }
                    self.send(
                        ctx,
                        client,
                        NoobMsg::PutReply { op, ok: true },
                        CTRL_MSG_BYTES,
                    );
                }
                if finished {
                    self.puts.remove(&k);
                }
            }
            NoobMode::TwoPc => {
                if st.acks1.len() >= st.needed && !st.ts_sent {
                    let ts = self.next_ts(op, ctx);
                    self.store.commit(key, op, ts);
                    match self.puts.get_mut(&k) {
                        Some(st) => st.ts_sent = true,
                        None => {
                            self.counters.internal_errors += 1;
                            return;
                        }
                    }
                    let replicas = self.ring.replica_addrs(key);
                    for dst in &replicas[1..] {
                        self.send(
                            ctx,
                            *dst,
                            NoobMsg::RepTs {
                                key: key.to_owned(),
                                op,
                                ts,
                            },
                            CTRL_MSG_BYTES,
                        );
                    }
                }
                let Some(st) = self.puts.get(&k) else {
                    self.counters.internal_errors += 1;
                    return;
                };
                if st.ts_sent && st.acks2.len() >= st.needed && !st.replied {
                    let client = st.client;
                    self.puts.remove(&k);
                    self.send(
                        ctx,
                        client,
                        NoobMsg::PutReply { op, ok: true },
                        CTRL_MSG_BYTES,
                    );
                    self.drain_waiting(key, ctx);
                }
            }
            NoobMode::Chain => {}
        }
    }

    fn drain_waiting(&mut self, key: &str, ctx: &mut Ctx) {
        if self.store.locked(key) {
            return;
        }
        if let Some(mut q) = self.waiting.remove(key) {
            if !q.is_empty() {
                let (value, op) = q.remove(0);
                if !q.is_empty() {
                    self.waiting.insert(key.to_owned(), q);
                }
                self.on_put(key.to_owned(), value, op, 0, ctx);
            }
        }
    }

    // ---------------------------------------------------------------
    // Get path
    // ---------------------------------------------------------------

    fn on_get(&mut self, key: String, op: OpId, hops: u8, ctx: &mut Ctx) {
        if let Some(c) = self.store.get(&key) {
            let size = c.value.size() + CTRL_MSG_BYTES;
            let value = Some(c.value.clone());
            self.counters.gets_served += 1;
            self.send(ctx, op.client, NoobMsg::GetReply { op, value }, size);
            return;
        }
        if !self.i_am_primary(&key) && hops < 2 {
            self.counters.forwarded += 1;
            let dst = self.ring.primary_addr(&key);
            self.send(
                ctx,
                dst,
                NoobMsg::Get {
                    key,
                    op,
                    hops: hops + 1,
                },
                CTRL_MSG_BYTES,
            );
            return;
        }
        self.send(
            ctx,
            op.client,
            NoobMsg::GetReply { op, value: None },
            CTRL_MSG_BYTES,
        );
    }

    // ---------------------------------------------------------------
    // Plumbing
    // ---------------------------------------------------------------

    fn on_noob(&mut self, msg: NoobMsg, src: Ipv4, ctx: &mut Ctx) {
        match msg {
            NoobMsg::Put {
                key,
                value,
                op,
                hops,
            } => self.on_put(key, value, op, hops, ctx),
            NoobMsg::Get { key, op, hops } => self.on_get(key, op, hops, ctx),
            NoobMsg::RepData {
                key,
                value,
                op,
                two_pc,
            } => self.on_rep_data(key, value, op, two_pc, src, ctx),
            NoobMsg::RepAck1 { key, op, from } => self.on_ack1(key, op, from, ctx),
            NoobMsg::RepTs { key, op, ts } => {
                self.store.commit(&key, op, ts);
                self.primary_seq = self.primary_seq.max(ts.primary_seq);
                let from = self.node;
                self.send(
                    ctx,
                    src,
                    NoobMsg::RepAck2 {
                        key: key.clone(),
                        op,
                        from,
                    },
                    CTRL_MSG_BYTES,
                );
                self.drain_waiting(&key, ctx);
            }
            NoobMsg::RepAck2 { key, op, from } => self.on_ack2(key, op, from, ctx),
            NoobMsg::ChainPut {
                key,
                value,
                op,
                remaining,
                client,
            } => {
                self.counters.replica_writes += 1;
                let size = value.size();
                let done = self.store.write_delay(ctx.now(), size, true);
                let ts = Timestamp {
                    primary_seq: op.client_seq,
                    primary: client,
                    client_seq: op.client_seq,
                    client,
                };
                self.store.commit_direct(&key, value.clone(), ts);
                self.defer(
                    ctx,
                    done,
                    Cont::ChainWritten {
                        key,
                        op,
                        remaining,
                        client,
                    },
                );
            }
            NoobMsg::PutReply { .. } | NoobMsg::GetReply { .. } => {}
        }
    }

    fn on_cont(&mut self, cont: Cont, ctx: &mut Ctx) {
        match cont {
            Cont::Process { msg, src } => self.on_noob(*msg, src, ctx),
            Cont::PrimaryWritten { key, op } => {
                if let Some(st) = self.puts.get_mut(&(key.clone(), op)) {
                    st.self_written = true;
                }
                self.advance_put(&key, op, ctx);
            }
            Cont::SecondaryWritten {
                key,
                op,
                primary,
                two_pc,
            } => {
                let _ = two_pc;
                let from = self.node;
                self.send(
                    ctx,
                    primary,
                    NoobMsg::RepAck1 { key, op, from },
                    CTRL_MSG_BYTES,
                );
            }
            Cont::ChainWritten {
                key,
                op,
                mut remaining,
                client,
            } => {
                if remaining.is_empty() {
                    // tail: acknowledge the client
                    self.send(
                        ctx,
                        client,
                        NoobMsg::PutReply { op, ok: true },
                        CTRL_MSG_BYTES,
                    );
                } else {
                    let next = remaining.remove(0);
                    let value = self
                        .store
                        .get(&key)
                        .map_or_else(|| Value::synthetic(0), |c| c.value.clone());
                    let size = value.size() + key.len() as u32 + 64;
                    self.send(
                        ctx,
                        next,
                        NoobMsg::ChainPut {
                            key,
                            value,
                            op,
                            remaining,
                            client,
                        },
                        size,
                    );
                }
            }
        }
    }

    /// CPU cost of processing one message (see `nice_kv::server`).
    fn msg_cost(msg: &NoobMsg) -> Time {
        match msg {
            NoobMsg::Put { .. }
            | NoobMsg::Get { .. }
            | NoobMsg::RepData { .. }
            | NoobMsg::ChainPut { .. } => REQ_COST,
            _ => CTRL_COST,
        }
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut Ctx) {
        for ev in events {
            if let TransportEvent::Delivered { from, msg, .. } = ev {
                if let Some(m) = msg.downcast::<NoobMsg>() {
                    let m = m.clone();
                    let cost = Self::msg_cost(&m);
                    let tok = self.next_cont;
                    self.next_cont += 1;
                    self.conts.insert(
                        tok,
                        Cont::Process {
                            msg: Box::new(m),
                            src: from.0,
                        },
                    );
                    ctx.cpu_defer(cost, tok);
                }
            }
        }
    }
}

impl App for NoobServerApp {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if let Some(cont) = self.conts.remove(&token) {
            self.on_cont(cont, ctx);
        }
    }

    fn on_crash(&mut self) {
        self.tp.on_crash();
        self.store.on_crash();
        self.puts.clear();
        self.waiting.clear();
        self.conts.clear();
    }
}

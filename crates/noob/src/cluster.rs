//! Assembles a NOOB deployment: storage nodes, optional gateways, and
//! clients behind a conventional (statically routed) switch — no SDN
//! cooperation anywhere.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowSwitch, FlowTable};
use nice_kv::{ClientOp, ClusterSpec, SimHostCfg};
use nice_ring::{NodeIdx, PhysicalRing};
use nice_sim::{HostCfg, HostId, Ipv4, Mac, Simulation, SwitchId, Time};

use kv_core::{KvClient, MetricsRegistry, RetryPolicy, Telemetry};

use crate::client::{ClientRoute, NoobClientApp};
use crate::gateway::{GatewayApp, GatewayPolicy};
use crate::msg::{Access, NoobMode};
use crate::server::{NoobRing, NoobServerApp};

/// NOOB deployment configuration, in the workspace's layered config
/// shape: the system-agnostic [`ClusterSpec`], the simulator's
/// [`SimHostCfg`], and NOOB's own access/consistency knobs.
///
/// `spec.retry = None` keeps NOOB's default fixed 2 s retry schedule
/// (like NICE's §6.6 clients); the chaos harness installs backoff +
/// jitter through the spec.
#[derive(Clone)]
pub struct NoobClusterCfg {
    /// System-agnostic deployment shape (nodes, replication, storage,
    /// retry/deadline behaviour, telemetry).
    pub spec: ClusterSpec,
    /// Simulator host layer (links, switch, fault plan, client start).
    pub host: SimHostCfg,
    /// Replication/consistency mode.
    pub mode: NoobMode,
    /// Access mechanism.
    pub access: Access,
    /// Balance gets over replicas (gateway- or client-side depending on
    /// the access mechanism). Only sound for 2PC/consistent modes.
    pub lb_gets: bool,
    /// Use the cold-start caching RAC client (§2.1) instead of the
    /// warm-cache direct client.
    pub caching_rac: bool,
    /// Number of gateway machines (ignored for RAC).
    pub gateways: usize,
    /// Per-client operation lists.
    pub client_ops: Vec<Vec<ClientOp>>,
}

impl NoobClusterCfg {
    /// A NOOB deployment with the given access mechanism and mode.
    pub fn new(
        storage_nodes: usize,
        r: usize,
        access: Access,
        mode: NoobMode,
        client_ops: Vec<Vec<ClientOp>>,
    ) -> NoobClusterCfg {
        NoobClusterCfg::from_spec(ClusterSpec::new(storage_nodes, r), access, mode, client_ops)
    }

    /// A NOOB deployment from an explicit [`ClusterSpec`].
    pub fn from_spec(
        spec: ClusterSpec,
        access: Access,
        mode: NoobMode,
        client_ops: Vec<Vec<ClientOp>>,
    ) -> NoobClusterCfg {
        NoobClusterCfg {
            spec,
            host: SimHostCfg::default(),
            mode,
            access,
            lb_gets: false,
            caching_rac: false,
            gateways: if access == Access::Rac { 0 } else { 1 },
            client_ops,
        }
    }

    /// Derive a NOOB deployment from a finished NICE
    /// [`nice_kv::ClusterCfg`]: spec, host layer, and clients carry over
    /// unchanged (including NICE's effective retry schedule), so an A/B
    /// experiment differs only in the access mechanism and consistency
    /// mode chosen here.
    pub fn from_nice(nice: &nice_kv::ClusterCfg, access: Access, mode: NoobMode) -> NoobClusterCfg {
        let mut spec = nice.spec;
        if spec.retry.is_none() {
            spec.retry = Some(nice.kv.retry_policy());
        }
        let mut cfg = NoobClusterCfg::from_spec(spec, access, mode, nice.client_ops.clone());
        cfg.host = nice.host.clone();
        cfg
    }
}

/// A wired NOOB deployment.
pub struct NoobCluster {
    /// The simulation world.
    pub sim: Simulation,
    /// Shared deployment knowledge.
    pub ring: NoobRing,
    /// Storage-node hosts.
    pub servers: Vec<HostId>,
    /// Gateway hosts.
    pub gateways: Vec<HostId>,
    /// Client hosts.
    pub clients: Vec<HostId>,
    /// The switch.
    pub switch: SwitchId,
}

impl NoobCluster {
    /// Build and wire the deployment.
    pub fn build(cfg: NoobClusterCfg) -> NoobCluster {
        let spec = cfg.spec;
        let parts = spec.partition_count();
        let phys = PhysicalRing::new(
            parts,
            (0..spec.nodes as u32).map(NodeIdx).collect(),
            spec.replication,
        );

        let mut sim = Simulation::new(spec.seed);
        let table = Rc::new(RefCell::new(FlowTable::new()));
        let switch = sim.add_switch(
            Box::new(FlowSwitch::new(Rc::clone(&table))),
            cfg.host.switch,
        );
        let mut rules: Vec<(Ipv4, Mac, nice_sim::Port)> = Vec::new();
        let mut ports: HashMap<Ipv4, nice_sim::Port> = HashMap::new();

        // Storage nodes.
        let server_ips: Vec<Ipv4> = (0..spec.nodes)
            .map(|i| Ipv4::new(10, 0, 0, 10 + i as u8))
            .collect();
        let ring = NoobRing {
            ring: phys,
            addrs: server_ips.clone(),
            port: 9000,
        };
        let mut servers = Vec::new();
        for (i, &ip) in server_ips.iter().enumerate() {
            let mac = Mac(0x200 + i as u64);
            let app = NoobServerApp::new(
                ring.clone(),
                NodeIdx(i as u32),
                cfg.mode,
                spec.storage,
                spec.telemetry,
            );
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.host.link.host_uplink(), cfg.host.link);
            ports.insert(ip, port);
            rules.push((ip, mac, port));
            servers.push(h);
        }

        // Gateways.
        let policy = match (cfg.access, cfg.lb_gets) {
            (Access::Rog, _) => GatewayPolicy::RandomNode,
            (Access::Rag, false) => GatewayPolicy::Primary,
            (Access::Rag, true) => GatewayPolicy::BalancedReplicas,
            (Access::Rac, _) => GatewayPolicy::Primary, // unused
        };
        let mut gateways = Vec::new();
        let n_gw = if cfg.access == Access::Rac {
            0
        } else {
            cfg.gateways.max(1)
        };
        for g in 0..n_gw {
            let ip = Ipv4::new(10, 0, 2, 1 + g as u8);
            let mac = Mac(0x400 + g as u64);
            let app = GatewayApp::new(ring.clone(), policy);
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.host.link.host_uplink(), cfg.host.link);
            ports.insert(ip, port);
            rules.push((ip, mac, port));
            gateways.push((h, ip));
        }

        // Clients.
        let mut clients = Vec::new();
        for (j, ops) in cfg.client_ops.iter().enumerate() {
            let ip = Ipv4(Ipv4::new(10, 0, 1, 0).0 + 1 + j as u32);
            let mac = Mac(0x300 + j as u64);
            let route = match (cfg.access, cfg.caching_rac) {
                (Access::Rac, true) => ClientRoute::CachingRac,
                (Access::Rac, false) => ClientRoute::Direct {
                    lb_gets: cfg.lb_gets,
                },
                _ => ClientRoute::Gateway(gateways[j % gateways.len()].1),
            };
            let start = cfg.host.client_start + Time::from_us(97) * j as u64;
            let mut app = NoobClientApp::new(ring.clone(), route, ops.clone(), start);
            app.retry_not_found = spec.retry_not_found;
            app.retry = spec
                .retry
                .unwrap_or_else(|| RetryPolicy::fixed(Time::from_secs(2)));
            app.op_deadline = spec.op_deadline;
            app.tel = Telemetry::new(&spec.telemetry);
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.host.link.host_uplink(), cfg.host.link);
            ports.insert(ip, port);
            rules.push((ip, mac, port));
            clients.push(h);
        }

        // Conventional IP routing: static rules for every host.
        for (ip, mac, port) in rules {
            table.borrow_mut().install(
                FlowRule::new(
                    prio::PHYS,
                    FlowMatch::any().dst_ip(ip),
                    vec![Action::SetMacDst(mac), Action::Output(port)],
                ),
                Time::ZERO,
            );
        }

        // Fault injection: one plan at the delivery choke point; outage
        // indices map onto the storage-node slice.
        if let Some(plan) = cfg.host.fault_plan {
            sim.install_fault_plan(plan, &servers);
        }

        NoobCluster {
            sim,
            ring,
            servers,
            gateways: gateways.into_iter().map(|(h, _)| h).collect(),
            clients,
            switch,
        }
    }

    /// Borrow client `i`'s app.
    pub fn client(&self, i: usize) -> &NoobClientApp {
        self.sim.app::<NoobClientApp>(self.clients[i])
    }

    /// Borrow server `i`'s app.
    pub fn server(&self, i: usize) -> &NoobServerApp {
        self.sim.app::<NoobServerApp>(self.servers[i])
    }

    /// Run until every client drained its queue (or `deadline`).
    pub fn run_until_done(&mut self, deadline: Time) -> bool {
        loop {
            let all_done = self
                .clients
                .iter()
                .all(|&c| self.sim.app::<NoobClientApp>(c).done_at.is_some());
            if all_done {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let step = Time::from_ms(10).min(deadline - self.sim.now());
            self.sim.run_for(step);
        }
    }

    /// When the last client finished.
    pub fn finish_time(&self) -> Option<Time> {
        self.clients
            .iter()
            .map(|&c| self.sim.app::<NoobClientApp>(c).done_at)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(Time::ZERO))
    }

    /// Cluster-wide telemetry snapshot: every server's registry (engine
    /// counters, WAL/store totals, transport repair stats, phase
    /// histograms) merged with every client's (end-to-end latency,
    /// retries). Deterministic under a fixed seed.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::default();
        for i in 0..self.servers.len() {
            m.merge(&self.server(i).metrics());
        }
        for (i, _) in self.clients.iter().enumerate() {
            m.merge(&self.client(i).metrics());
        }
        m
    }
}

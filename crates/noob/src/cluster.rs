//! Assembles a NOOB deployment: storage nodes, optional gateways, and
//! clients behind a conventional (statically routed) switch — no SDN
//! cooperation anywhere.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nice_flow::{prio, Action, FlowMatch, FlowRule, FlowSwitch, FlowTable};
use nice_kv::{ClientOp, StorageCfg};
use nice_ring::{NodeIdx, PhysicalRing};
use nice_sim::{
    ChannelCfg, FaultPlan, HostCfg, HostId, Ipv4, Mac, Simulation, SwitchCfg, SwitchId, Time,
};

use crate::client::{ClientRoute, NoobClientApp};
use crate::gateway::{GatewayApp, GatewayPolicy};
use crate::msg::{Access, NoobMode};
use crate::server::{NoobRing, NoobServerApp};

/// NOOB deployment configuration.
#[derive(Clone)]
pub struct NoobClusterCfg {
    /// Determinism seed.
    pub seed: u64,
    /// Storage node count.
    pub storage_nodes: usize,
    /// Replication level.
    pub replication: usize,
    /// Partition count (default: node count rounded up, min 16).
    pub partitions: Option<u32>,
    /// Replication/consistency mode.
    pub mode: NoobMode,
    /// Access mechanism.
    pub access: Access,
    /// Balance gets over replicas (gateway- or client-side depending on
    /// the access mechanism). Only sound for 2PC/consistent modes.
    pub lb_gets: bool,
    /// Use the cold-start caching RAC client (§2.1) instead of the
    /// warm-cache direct client.
    pub caching_rac: bool,
    /// Number of gateway machines (ignored for RAC).
    pub gateways: usize,
    /// Storage device model.
    pub storage: StorageCfg,
    /// Link configuration.
    pub link: ChannelCfg,
    /// Switch parameters.
    pub switch: SwitchCfg,
    /// When clients start.
    pub client_start: Time,
    /// Per-client operation lists.
    pub client_ops: Vec<Vec<ClientOp>>,
    /// Clients retry NotFound gets with a short backoff.
    pub retry_not_found: bool,
    /// Client retry schedule (fixed 2 s by default, like NICE's §6.6
    /// clients; the chaos harness swaps in backoff + jitter).
    pub retry: kv_core::RetryPolicy,
    /// Deterministic fault plan, applied at the simulator's packet
    /// delivery choke point. Outage indices address storage nodes.
    pub fault_plan: Option<FaultPlan>,
}

impl NoobClusterCfg {
    /// A NOOB deployment with the given access mechanism and mode.
    pub fn new(
        storage_nodes: usize,
        r: usize,
        access: Access,
        mode: NoobMode,
        client_ops: Vec<Vec<ClientOp>>,
    ) -> NoobClusterCfg {
        NoobClusterCfg {
            seed: 42,
            storage_nodes,
            replication: r,
            partitions: None,
            mode,
            access,
            lb_gets: false,
            caching_rac: false,
            gateways: if access == Access::Rac { 0 } else { 1 },
            storage: StorageCfg::default(),
            link: ChannelCfg::gigabit(),
            switch: SwitchCfg::default(),
            client_start: Time::from_ms(50),
            client_ops,
            retry_not_found: false,
            retry: kv_core::RetryPolicy::fixed(Time::from_secs(2)),
            fault_plan: None,
        }
    }

    /// Derive a NOOB deployment from the shared [`nice_kv::ClusterBuilder`]:
    /// nodes, replication, seed, clients, and the fault plan carry over
    /// unchanged, so an A/B experiment against NICE differs only in the
    /// access mechanism and consistency mode chosen here.
    pub fn from_builder(
        b: nice_kv::ClusterBuilder,
        access: Access,
        mode: NoobMode,
    ) -> NoobClusterCfg {
        let shared = b.into_cfg();
        let mut cfg = NoobClusterCfg::new(
            shared.storage_nodes,
            shared.replication,
            access,
            mode,
            shared.client_ops,
        );
        cfg.seed = shared.seed;
        cfg.partitions = shared.partitions;
        cfg.storage = shared.storage;
        cfg.link = shared.link;
        cfg.switch = shared.switch;
        cfg.client_start = shared.client_start;
        cfg.retry_not_found = shared.retry_not_found;
        cfg.retry = shared.kv.retry_policy();
        cfg.fault_plan = shared.fault_plan;
        cfg
    }
}

/// A wired NOOB deployment.
pub struct NoobCluster {
    /// The simulation world.
    pub sim: Simulation,
    /// Shared deployment knowledge.
    pub ring: NoobRing,
    /// Storage-node hosts.
    pub servers: Vec<HostId>,
    /// Gateway hosts.
    pub gateways: Vec<HostId>,
    /// Client hosts.
    pub clients: Vec<HostId>,
    /// The switch.
    pub switch: SwitchId,
}

impl NoobCluster {
    /// Build and wire the deployment.
    pub fn build(cfg: NoobClusterCfg) -> NoobCluster {
        let parts = cfg
            .partitions
            .unwrap_or_else(|| (cfg.storage_nodes.next_power_of_two() as u32).max(16));
        let phys = PhysicalRing::new(
            parts,
            (0..cfg.storage_nodes as u32).map(NodeIdx).collect(),
            cfg.replication,
        );

        let mut sim = Simulation::new(cfg.seed);
        let table = Rc::new(RefCell::new(FlowTable::new()));
        let switch = sim.add_switch(Box::new(FlowSwitch::new(Rc::clone(&table))), cfg.switch);
        let mut rules: Vec<(Ipv4, Mac, nice_sim::Port)> = Vec::new();
        let mut ports: HashMap<Ipv4, nice_sim::Port> = HashMap::new();

        // Storage nodes.
        let server_ips: Vec<Ipv4> = (0..cfg.storage_nodes)
            .map(|i| Ipv4::new(10, 0, 0, 10 + i as u8))
            .collect();
        let ring = NoobRing {
            ring: phys,
            addrs: server_ips.clone(),
            port: 9000,
        };
        let mut servers = Vec::new();
        for (i, &ip) in server_ips.iter().enumerate() {
            let mac = Mac(0x200 + i as u64);
            let app = NoobServerApp::new(ring.clone(), NodeIdx(i as u32), cfg.mode, cfg.storage);
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.link.host_uplink(), cfg.link);
            ports.insert(ip, port);
            rules.push((ip, mac, port));
            servers.push(h);
        }

        // Gateways.
        let policy = match (cfg.access, cfg.lb_gets) {
            (Access::Rog, _) => GatewayPolicy::RandomNode,
            (Access::Rag, false) => GatewayPolicy::Primary,
            (Access::Rag, true) => GatewayPolicy::BalancedReplicas,
            (Access::Rac, _) => GatewayPolicy::Primary, // unused
        };
        let mut gateways = Vec::new();
        let n_gw = if cfg.access == Access::Rac {
            0
        } else {
            cfg.gateways.max(1)
        };
        for g in 0..n_gw {
            let ip = Ipv4::new(10, 0, 2, 1 + g as u8);
            let mac = Mac(0x400 + g as u64);
            let app = GatewayApp::new(ring.clone(), policy);
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.link.host_uplink(), cfg.link);
            ports.insert(ip, port);
            rules.push((ip, mac, port));
            gateways.push((h, ip));
        }

        // Clients.
        let mut clients = Vec::new();
        for (j, ops) in cfg.client_ops.iter().enumerate() {
            let ip = Ipv4(Ipv4::new(10, 0, 1, 0).0 + 1 + j as u32);
            let mac = Mac(0x300 + j as u64);
            let route = match (cfg.access, cfg.caching_rac) {
                (Access::Rac, true) => ClientRoute::CachingRac,
                (Access::Rac, false) => ClientRoute::Direct {
                    lb_gets: cfg.lb_gets,
                },
                _ => ClientRoute::Gateway(gateways[j % gateways.len()].1),
            };
            let start = cfg.client_start + Time::from_us(97) * j as u64;
            let mut app = NoobClientApp::new(ring.clone(), route, ops.clone(), start);
            app.retry_not_found = cfg.retry_not_found;
            app.retry = cfg.retry;
            let h = sim.add_node(Box::new(app), HostCfg::new(ip, mac));
            let port = sim.connect_asym(h, switch, cfg.link.host_uplink(), cfg.link);
            ports.insert(ip, port);
            rules.push((ip, mac, port));
            clients.push(h);
        }

        // Conventional IP routing: static rules for every host.
        for (ip, mac, port) in rules {
            table.borrow_mut().install(
                FlowRule::new(
                    prio::PHYS,
                    FlowMatch::any().dst_ip(ip),
                    vec![Action::SetMacDst(mac), Action::Output(port)],
                ),
                Time::ZERO,
            );
        }

        // Fault injection: one plan at the delivery choke point; outage
        // indices map onto the storage-node slice.
        if let Some(plan) = cfg.fault_plan {
            sim.install_fault_plan(plan, &servers);
        }

        NoobCluster {
            sim,
            ring,
            servers,
            gateways: gateways.into_iter().map(|(h, _)| h).collect(),
            clients,
            switch,
        }
    }

    /// Borrow client `i`'s app.
    pub fn client(&self, i: usize) -> &NoobClientApp {
        self.sim.app::<NoobClientApp>(self.clients[i])
    }

    /// Borrow server `i`'s app.
    pub fn server(&self, i: usize) -> &NoobServerApp {
        self.sim.app::<NoobServerApp>(self.servers[i])
    }

    /// Run until every client drained its queue (or `deadline`).
    pub fn run_until_done(&mut self, deadline: Time) -> bool {
        loop {
            let all_done = self
                .clients
                .iter()
                .all(|&c| self.sim.app::<NoobClientApp>(c).done_at.is_some());
            if all_done {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let step = Time::from_ms(10).min(deadline - self.sim.now());
            self.sim.run_for(step);
        }
    }

    /// When the last client finished.
    pub fn finish_time(&self) -> Option<Time> {
        self.clients
            .iter()
            .map(|&c| self.sim.app::<NoobClientApp>(c).done_at)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(Time::ZERO))
    }
}

//! Wire serialization of [`NoobMsg`] for the real UDP runtime.
//!
//! Wrap this in [`nice_transport::TpCodec`] to get the full frame stack
//! a real NOOB node speaks on loopback:
//! `NoobMsg` → transport chunks/acks → framed UDP datagrams.

use std::any::Any;
use std::rc::Rc;

use node_rt::{ByteReader, ByteWriter, Ipv4, Payload, WireCodec};

use crate::msg::{NoobMsg, OpId, Timestamp, Value};
use nice_ring::NodeIdx;

const TAG_PUT: u8 = 0;
const TAG_GET: u8 = 1;
const TAG_PUT_REPLY: u8 = 2;
const TAG_GET_REPLY: u8 = 3;
const TAG_REP_DATA: u8 = 4;
const TAG_REP_ACK1: u8 = 5;
const TAG_REP_TS: u8 = 6;
const TAG_REP_ACK2: u8 = 7;
const TAG_CHAIN_PUT: u8 = 8;
const TAG_SYNC_REQ: u8 = 9;
const TAG_SYNC_RESP: u8 = 10;

/// Corruption bound on [`NoobMsg::SyncResp`] item counts: rejoin
/// transfers are store-sized, never larger than this.
const MAX_SYNC_ITEMS: u32 = 1 << 20;

fn put_value(w: &mut ByteWriter, v: &Value) {
    w.bytes(&v.bytes);
    w.u32(v.pad);
}

fn get_value(r: &mut ByteReader) -> Option<Value> {
    let bytes = r.bytes()?.to_vec();
    let pad = r.u32()?;
    Some(Value {
        bytes: Rc::new(bytes),
        pad,
    })
}

fn put_op(w: &mut ByteWriter, op: &OpId) {
    w.u32(op.client.0);
    w.u64(op.client_seq);
}

fn get_op(r: &mut ByteReader) -> Option<OpId> {
    Some(OpId {
        client: Ipv4(r.u32()?),
        client_seq: r.u64()?,
    })
}

fn put_ts(w: &mut ByteWriter, ts: &Timestamp) {
    w.u64(ts.primary_seq);
    w.u32(ts.primary.0);
    w.u64(ts.client_seq);
    w.u32(ts.client.0);
}

fn get_ts(r: &mut ByteReader) -> Option<Timestamp> {
    Some(Timestamp {
        primary_seq: r.u64()?,
        primary: Ipv4(r.u32()?),
        client_seq: r.u64()?,
        client: Ipv4(r.u32()?),
    })
}

/// Serializes the NOOB message vocabulary.
pub struct NoobCodec;

impl WireCodec for NoobCodec {
    fn encode(&self, payload: &dyn Any) -> Option<Vec<u8>> {
        let msg = payload.downcast_ref::<NoobMsg>()?;
        let mut w = ByteWriter::new();
        match msg {
            NoobMsg::Put {
                key,
                value,
                op,
                hops,
            } => {
                w.u8(TAG_PUT);
                w.str(key);
                put_value(&mut w, value);
                put_op(&mut w, op);
                w.u8(*hops);
            }
            NoobMsg::Get { key, op, hops } => {
                w.u8(TAG_GET);
                w.str(key);
                put_op(&mut w, op);
                w.u8(*hops);
            }
            NoobMsg::PutReply { op, ok } => {
                w.u8(TAG_PUT_REPLY);
                put_op(&mut w, op);
                w.u8(u8::from(*ok));
            }
            NoobMsg::GetReply { op, value } => {
                w.u8(TAG_GET_REPLY);
                put_op(&mut w, op);
                match value {
                    Some(v) => {
                        w.u8(1);
                        put_value(&mut w, v);
                    }
                    None => w.u8(0),
                }
            }
            NoobMsg::RepData {
                key,
                value,
                op,
                two_pc,
            } => {
                w.u8(TAG_REP_DATA);
                w.str(key);
                put_value(&mut w, value);
                put_op(&mut w, op);
                w.u8(u8::from(*two_pc));
            }
            NoobMsg::RepAck1 { key, op, from } => {
                w.u8(TAG_REP_ACK1);
                w.str(key);
                put_op(&mut w, op);
                w.u32(from.0);
            }
            NoobMsg::RepTs { key, op, ts } => {
                w.u8(TAG_REP_TS);
                w.str(key);
                put_op(&mut w, op);
                put_ts(&mut w, ts);
            }
            NoobMsg::RepAck2 { key, op, from } => {
                w.u8(TAG_REP_ACK2);
                w.str(key);
                put_op(&mut w, op);
                w.u32(from.0);
            }
            NoobMsg::ChainPut {
                key,
                value,
                op,
                remaining,
                client,
            } => {
                w.u8(TAG_CHAIN_PUT);
                w.str(key);
                put_value(&mut w, value);
                put_op(&mut w, op);
                w.u32(remaining.len() as u32);
                for ip in remaining {
                    w.u32(ip.0);
                }
                w.u32(client.0);
            }
            NoobMsg::SyncReq { from } => {
                w.u8(TAG_SYNC_REQ);
                w.u32(from.0);
            }
            NoobMsg::SyncResp { items } => {
                w.u8(TAG_SYNC_RESP);
                w.u32(items.len() as u32);
                for (key, value, ts) in items {
                    w.str(key);
                    put_value(&mut w, value);
                    put_ts(&mut w, ts);
                }
            }
        }
        Some(w.into_vec())
    }

    fn decode(&self, bytes: &[u8]) -> Option<Payload> {
        let mut r = ByteReader::new(bytes);
        let msg = match r.u8()? {
            TAG_PUT => NoobMsg::Put {
                key: r.str()?,
                value: get_value(&mut r)?,
                op: get_op(&mut r)?,
                hops: r.u8()?,
            },
            TAG_GET => NoobMsg::Get {
                key: r.str()?,
                op: get_op(&mut r)?,
                hops: r.u8()?,
            },
            TAG_PUT_REPLY => NoobMsg::PutReply {
                op: get_op(&mut r)?,
                ok: r.u8()? != 0,
            },
            TAG_GET_REPLY => {
                let op = get_op(&mut r)?;
                let value = if r.u8()? != 0 {
                    Some(get_value(&mut r)?)
                } else {
                    None
                };
                NoobMsg::GetReply { op, value }
            }
            TAG_REP_DATA => NoobMsg::RepData {
                key: r.str()?,
                value: get_value(&mut r)?,
                op: get_op(&mut r)?,
                two_pc: r.u8()? != 0,
            },
            TAG_REP_ACK1 => NoobMsg::RepAck1 {
                key: r.str()?,
                op: get_op(&mut r)?,
                from: NodeIdx(r.u32()?),
            },
            TAG_REP_TS => NoobMsg::RepTs {
                key: r.str()?,
                op: get_op(&mut r)?,
                ts: get_ts(&mut r)?,
            },
            TAG_REP_ACK2 => NoobMsg::RepAck2 {
                key: r.str()?,
                op: get_op(&mut r)?,
                from: NodeIdx(r.u32()?),
            },
            TAG_CHAIN_PUT => {
                let key = r.str()?;
                let value = get_value(&mut r)?;
                let op = get_op(&mut r)?;
                let n = r.u32()? as usize;
                if n > 1024 {
                    return None; // replica chains are short; this is corruption
                }
                let mut remaining = Vec::with_capacity(n);
                for _ in 0..n {
                    remaining.push(Ipv4(r.u32()?));
                }
                let client = Ipv4(r.u32()?);
                NoobMsg::ChainPut {
                    key,
                    value,
                    op,
                    remaining,
                    client,
                }
            }
            TAG_SYNC_REQ => NoobMsg::SyncReq {
                from: NodeIdx(r.u32()?),
            },
            TAG_SYNC_RESP => {
                let n = r.u32()?;
                if n > MAX_SYNC_ITEMS {
                    return None; // corruption: no store is that large
                }
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let key = r.str()?;
                    let value = get_value(&mut r)?;
                    let ts = get_ts(&mut r)?;
                    items.push((key, value, ts));
                }
                NoobMsg::SyncResp { items }
            }
            _ => return None,
        };
        Some(Rc::new(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &NoobMsg) -> NoobMsg {
        let wire = NoobCodec.encode(msg).expect("encodable");
        let back = NoobCodec.decode(&wire).expect("decodable");
        back.downcast_ref::<NoobMsg>().expect("a NoobMsg").clone()
    }

    fn op(seq: u64) -> OpId {
        OpId {
            client: Ipv4::new(10, 0, 1, 1),
            client_seq: seq,
        }
    }

    #[test]
    fn data_messages_roundtrip() {
        let put = NoobMsg::Put {
            key: "user42".into(),
            value: Value::from_bytes(b"abc".to_vec()),
            op: op(3),
            hops: 1,
        };
        match roundtrip(&put) {
            NoobMsg::Put {
                key,
                value,
                op,
                hops,
            } => {
                assert_eq!(key, "user42");
                assert_eq!(value.bytes.as_slice(), b"abc");
                assert_eq!(value.pad, 0);
                assert_eq!(op.client_seq, 3);
                assert_eq!(hops, 1);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let reply = NoobMsg::GetReply {
            op: op(9),
            value: Some(Value::synthetic(4096)),
        };
        match roundtrip(&reply) {
            NoobMsg::GetReply { op, value } => {
                assert_eq!(op.client_seq, 9);
                assert_eq!(value.map(|v| v.size()), Some(4096));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(&NoobMsg::GetReply {
            op: op(10),
            value: None,
        }) {
            NoobMsg::GetReply { value, .. } => assert!(value.is_none()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn replication_messages_roundtrip() {
        let ts = Timestamp {
            primary_seq: 8,
            primary: Ipv4::new(10, 0, 0, 10),
            client_seq: 2,
            client: Ipv4::new(10, 0, 1, 1),
        };
        match roundtrip(&NoobMsg::RepTs {
            key: "k".into(),
            op: op(2),
            ts,
        }) {
            NoobMsg::RepTs { ts: back, .. } => assert_eq!(back, ts),
            other => panic!("wrong variant: {other:?}"),
        }
        let chain = NoobMsg::ChainPut {
            key: "k".into(),
            value: Value::from_bytes(vec![1]),
            op: op(1),
            remaining: vec![Ipv4::new(10, 0, 0, 11), Ipv4::new(10, 0, 0, 12)],
            client: Ipv4::new(10, 0, 1, 2),
        };
        match roundtrip(&chain) {
            NoobMsg::ChainPut {
                remaining, client, ..
            } => {
                assert_eq!(remaining.len(), 2);
                assert_eq!(client, Ipv4::new(10, 0, 1, 2));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn corrupt_frames_are_dropped() {
        assert!(NoobCodec.decode(&[]).is_none());
        assert!(NoobCodec.decode(&[77]).is_none());
        assert!(NoobCodec.decode(&[TAG_PUT, 0, 0]).is_none());
        // A SyncResp claiming more items than any store holds is corruption.
        let mut w = node_rt::ByteWriter::new();
        w.u8(TAG_SYNC_RESP);
        w.u32(MAX_SYNC_ITEMS + 1);
        assert!(NoobCodec.decode(&w.into_vec()).is_none());
    }

    #[test]
    fn sync_messages_roundtrip() {
        match roundtrip(&NoobMsg::SyncReq { from: NodeIdx(3) }) {
            NoobMsg::SyncReq { from } => assert_eq!(from, NodeIdx(3)),
            other => panic!("wrong variant: {other:?}"),
        }
        let ts = Timestamp {
            primary_seq: 4,
            primary: Ipv4::new(10, 0, 0, 11),
            client_seq: 1,
            client: Ipv4::new(10, 0, 1, 1),
        };
        let resp = NoobMsg::SyncResp {
            items: vec![
                ("a".into(), Value::from_bytes(vec![1, 2]), ts),
                ("b".into(), Value::synthetic(64), ts),
            ],
        };
        match roundtrip(&resp) {
            NoobMsg::SyncResp { items } => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].0, "a");
                assert_eq!(items[0].1.bytes.as_slice(), &[1, 2]);
                assert_eq!(items[0].2, ts);
                assert_eq!(items[1].1.size(), 64);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match roundtrip(&NoobMsg::SyncResp { items: vec![] }) {
            NoobMsg::SyncResp { items } => assert!(items.is_empty()),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}

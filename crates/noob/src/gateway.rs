//! NOOB gateways: the load balancers of §2.1.
//!
//! A gateway is a full store-and-forward hop: it receives the complete
//! request, then re-sends it — its link is crossed twice and its CPU pays
//! per-message costs, which is exactly why ROG costs two extra hops and
//! RAG one.

use std::collections::BTreeMap;

use nice_kv::KvError;
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};
use node_rt::Rng;
use node_rt::{NodeApp, NodeIo, Packet, Time};

use crate::msg::NoobMsg;
use crate::server::NoobRing;

/// Store-and-forward cost per request at the gateway: a userspace proxy
/// pays a full receive + parse + re-send per request (the paper's
/// "generic off-the-shelf load balancer").
const FWD_COST: Time = Time::from_us(200);
/// Continuation tokens for deferred forwards.
const TOK_FWD_BASE: u64 = 1000;

/// Gateway forwarding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayPolicy {
    /// Replica-oblivious: forward to a uniformly random storage node.
    RandomNode,
    /// Replica-aware: forward to the key's primary.
    Primary,
    /// Replica-aware + load balancing: puts to the primary, gets to a
    /// random replica of the key.
    BalancedReplicas,
}

/// The gateway application.
pub struct GatewayApp {
    ring: NoobRing,
    policy: GatewayPolicy,
    tp: Transport,
    /// Deferred forwards keyed by continuation token. Ordered map: the
    /// `unordered_iter` lint bans hash-ordered state in protocol crates.
    pending: BTreeMap<u64, NoobMsg>,
    next_tok: u64,
    /// Requests forwarded.
    pub forwarded: u64,
    /// Requests dropped because no backend was available.
    pub dropped_no_backend: u64,
    /// The most recent forwarding error, for diagnostics.
    pub last_error: Option<KvError>,
}

impl GatewayApp {
    /// A gateway over `ring` with the given policy.
    pub fn new(ring: NoobRing, policy: GatewayPolicy) -> GatewayApp {
        GatewayApp {
            tp: Transport::new(ring.port),
            ring,
            policy,
            pending: BTreeMap::new(),
            next_tok: TOK_FWD_BASE,
            forwarded: 0,
            dropped_no_backend: 0,
            last_error: None,
        }
    }

    fn target(
        &self,
        key: &str,
        is_get: bool,
        ctx: &mut dyn NodeIo,
    ) -> Result<node_rt::Ipv4, KvError> {
        match self.policy {
            GatewayPolicy::RandomNode => {
                if self.ring.addrs.is_empty() {
                    return Err(KvError::NoBackend);
                }
                let i = ctx.rng().random_range(0..self.ring.addrs.len());
                self.ring.addrs.get(i).copied().ok_or(KvError::NoBackend)
            }
            GatewayPolicy::Primary => Ok(self.ring.primary_addr(key)),
            GatewayPolicy::BalancedReplicas => {
                if is_get {
                    let replicas = self.ring.replica_addrs(key);
                    if replicas.is_empty() {
                        return Err(KvError::NoBackend);
                    }
                    let i = ctx.rng().random_range(0..replicas.len());
                    replicas.get(i).copied().ok_or(KvError::NoBackend)
                } else {
                    Ok(self.ring.primary_addr(key))
                }
            }
        }
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut dyn NodeIo) {
        for ev in events {
            let TransportEvent::Delivered { msg, .. } = ev else {
                continue;
            };
            let Some(m) = msg.downcast::<NoobMsg>() else {
                continue;
            };
            // Queue the request on the proxy CPU; forward when processed.
            let tok = self.next_tok;
            self.next_tok += 1;
            self.pending.insert(tok, m.clone());
            ctx.cpu_defer(FWD_COST, tok);
        }
    }

    fn forward(&mut self, m: NoobMsg, ctx: &mut dyn NodeIo) {
        match m {
            NoobMsg::Put {
                key,
                value,
                op,
                hops,
            } => {
                let dst = match self.target(&key, false, ctx) {
                    Ok(dst) => dst,
                    Err(e) => {
                        self.dropped_no_backend += 1;
                        self.last_error = Some(e);
                        return;
                    }
                };
                let size = value.size() + key.len() as u32 + 64;
                self.forwarded += 1;
                self.tp.tcp_send(
                    ctx,
                    dst,
                    self.ring.port,
                    Msg::new(
                        NoobMsg::Put {
                            key,
                            value,
                            op,
                            hops,
                        },
                        size,
                    ),
                );
            }
            NoobMsg::Get { key, op, hops } => {
                let dst = match self.target(&key, true, ctx) {
                    Ok(dst) => dst,
                    Err(e) => {
                        self.dropped_no_backend += 1;
                        self.last_error = Some(e);
                        return;
                    }
                };
                let size = key.len() as u32 + 64;
                self.forwarded += 1;
                self.tp.tcp_send(
                    ctx,
                    dst,
                    self.ring.port,
                    Msg::new(NoobMsg::Get { key, op, hops }, size),
                );
            }
            _ => {}
        }
    }
}

impl NodeApp for GatewayApp {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut dyn NodeIo) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }
    fn on_timer(&mut self, token: u64, ctx: &mut dyn NodeIo) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if let Some(m) = self.pending.remove(&token) {
            self.forward(m, ctx);
        }
    }
    fn on_crash(&mut self) {
        self.tp.on_crash();
        self.pending.clear();
    }
}

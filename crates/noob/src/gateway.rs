//! NOOB gateways: the load balancers of §2.1.
//!
//! A gateway is a full store-and-forward hop: it receives the complete
//! request, then re-sends it — its link is crossed twice and its CPU pays
//! per-message costs, which is exactly why ROG costs two extra hops and
//! RAG one.

use nice_sim::Rng;
use nice_sim::{App, Ctx, Packet, Time};
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};

use crate::msg::NoobMsg;
use crate::server::NoobRing;

/// Store-and-forward cost per request at the gateway: a userspace proxy
/// pays a full receive + parse + re-send per request (the paper's
/// "generic off-the-shelf load balancer").
const FWD_COST: Time = Time::from_us(200);
/// Continuation tokens for deferred forwards.
const TOK_FWD_BASE: u64 = 1000;

/// Gateway forwarding policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayPolicy {
    /// Replica-oblivious: forward to a uniformly random storage node.
    RandomNode,
    /// Replica-aware: forward to the key's primary.
    Primary,
    /// Replica-aware + load balancing: puts to the primary, gets to a
    /// random replica of the key.
    BalancedReplicas,
}

/// The gateway application.
pub struct GatewayApp {
    ring: NoobRing,
    policy: GatewayPolicy,
    tp: Transport,
    pending: std::collections::HashMap<u64, NoobMsg>,
    next_tok: u64,
    /// Requests forwarded.
    pub forwarded: u64,
}

impl GatewayApp {
    /// A gateway over `ring` with the given policy.
    pub fn new(ring: NoobRing, policy: GatewayPolicy) -> GatewayApp {
        GatewayApp {
            tp: Transport::new(ring.port),
            ring,
            policy,
            pending: std::collections::HashMap::new(),
            next_tok: TOK_FWD_BASE,
            forwarded: 0,
        }
    }

    fn target(&self, key: &str, is_get: bool, ctx: &mut Ctx) -> nice_sim::Ipv4 {
        match self.policy {
            GatewayPolicy::RandomNode => {
                let i = ctx.rng().random_range(0..self.ring.addrs.len());
                self.ring.addrs[i]
            }
            GatewayPolicy::Primary => self.ring.primary_addr(key),
            GatewayPolicy::BalancedReplicas => {
                if is_get {
                    let replicas = self.ring.replica_addrs(key);
                    let i = ctx.rng().random_range(0..replicas.len());
                    replicas[i]
                } else {
                    self.ring.primary_addr(key)
                }
            }
        }
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut Ctx) {
        for ev in events {
            let TransportEvent::Delivered { msg, .. } = ev else {
                continue;
            };
            let Some(m) = msg.downcast::<NoobMsg>() else {
                continue;
            };
            // Queue the request on the proxy CPU; forward when processed.
            let tok = self.next_tok;
            self.next_tok += 1;
            self.pending.insert(tok, m.clone());
            ctx.cpu_defer(FWD_COST, tok);
        }
    }

    fn forward(&mut self, m: NoobMsg, ctx: &mut Ctx) {
        match m {
            NoobMsg::Put {
                key,
                value,
                op,
                hops,
            } => {
                let dst = self.target(&key, false, ctx);
                let size = value.size() + key.len() as u32 + 64;
                self.forwarded += 1;
                self.tp.tcp_send(
                    ctx,
                    dst,
                    self.ring.port,
                    Msg::new(
                        NoobMsg::Put {
                            key,
                            value,
                            op,
                            hops,
                        },
                        size,
                    ),
                );
            }
            NoobMsg::Get { key, op, hops } => {
                let dst = self.target(&key, true, ctx);
                let size = key.len() as u32 + 64;
                self.forwarded += 1;
                self.tp.tcp_send(
                    ctx,
                    dst,
                    self.ring.port,
                    Msg::new(NoobMsg::Get { key, op, hops }, size),
                );
            }
            _ => {}
        }
    }
}

impl App for GatewayApp {
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if let Some(m) = self.pending.remove(&token) {
            self.forward(m, ctx);
        }
    }
    fn on_crash(&mut self) {
        self.tp.on_crash();
        self.pending.clear();
    }
}

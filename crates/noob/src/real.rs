//! Boot a NOOB cluster as real OS threads serving UDP on loopback.
//!
//! The same [`NoobServerApp`], [`GatewayApp`], and [`NoobClientApp`]
//! state machines that run on simulated hosts are spawned here onto
//! `node_rt`'s threaded UDP runtime: one thread + one `127.0.0.1` socket
//! per node, wall-clock timers, real datagrams framed by
//! [`TpCodec`]`<`[`NoobCodec`]`>`. Only the routing differs from a
//! production deployment — every address lives on loopback.
//!
//! Scope: gateway routing (ROG/RAG) and direct replica-aware-client
//! routing. There is no switch on loopback, so anything that needs
//! in-network cooperation (NICE's in-switch anycast and multicast) stays
//! simulator-only.

use std::any::Any;
use std::sync::Arc;

use kv_core::{
    ClientOp, ClusterSpec, History, KvClient, MetricsRegistry, OpRecord, RetryPolicy, Telemetry,
    Value,
};
use nice_ring::{NodeIdx, PhysicalRing};
use nice_transport::TpCodec;
use node_rt::{Ipv4, NodeSpec, RuntimeCfg, Time, UdpHostCfg, UdpRuntime};

use crate::client::{ClientRoute, NoobClientApp};
use crate::gateway::{GatewayApp, GatewayPolicy};
use crate::msg::NoobMode;
use crate::server::{NoobRing, NoobServerApp};
use crate::wire::NoobCodec;

/// A `Send`-able operation spec. [`ClientOp`] carries an `Rc`-backed
/// [`Value`], so the real ops are materialized inside each client's node
/// thread from this description.
#[derive(Debug, Clone)]
pub enum RealOp {
    /// Write `bytes` under `key`.
    Put {
        /// The key.
        key: String,
        /// The value bytes.
        bytes: Vec<u8>,
    },
    /// Read `key`.
    Get {
        /// The key.
        key: String,
    },
}

impl RealOp {
    fn materialize(self) -> ClientOp {
        match self {
            RealOp::Put { key, bytes } => ClientOp::Put {
                key,
                value: Value::from_bytes(bytes),
            },
            RealOp::Get { key } => ClientOp::Get { key },
        }
    }
}

/// Loopback NOOB deployment configuration, in the workspace's layered
/// config shape: the system-agnostic [`ClusterSpec`], the real runtime's
/// [`UdpHostCfg`] (WAL root, socket nemesis), and NOOB's routing knobs.
///
/// `spec.retry = None` keeps the real runtime's default fixed 500 ms
/// schedule — wall-clock now, keep it short in tests. With
/// `host.wal_root` set, every server gets a file WAL under
/// `<wal_root>/node-<i>.wal`: acks become fsync-gated, and
/// [`RealNoobCluster::restart_server`] recovers from the surviving file;
/// `None` = memory-only servers (crash loses everything, like the
/// simulator's volatile model).
#[derive(Clone)]
pub struct RealNoobCfg {
    /// System-agnostic deployment shape (seed, nodes, replication,
    /// partitions, storage, retry/deadline behaviour, telemetry).
    pub spec: ClusterSpec,
    /// Real-runtime host layer (durable state root, socket nemesis).
    pub host: UdpHostCfg,
    /// Replication/consistency mode.
    pub mode: NoobMode,
    /// Route via one gateway with this policy; `None` = direct
    /// replica-aware clients.
    pub gateway: Option<GatewayPolicy>,
    /// Direct clients balance gets over replicas.
    pub lb_gets: bool,
    /// Per-client operation lists.
    pub client_ops: Vec<Vec<RealOp>>,
}

impl RealNoobCfg {
    /// A small primary-only cluster serving `client_ops`.
    pub fn new(servers: usize, replication: usize, client_ops: Vec<Vec<RealOp>>) -> RealNoobCfg {
        let mut spec = ClusterSpec::new(servers, replication);
        spec.seed = 7;
        spec.retry = Some(RetryPolicy::fixed(Time::from_ms(500)));
        RealNoobCfg {
            spec,
            host: UdpHostCfg::default(),
            mode: NoobMode::PrimaryOnly,
            gateway: Some(GatewayPolicy::Primary),
            lb_gets: false,
            client_ops,
        }
    }
}

/// Address of server `i` (same plan as the simulated cluster builder).
pub fn server_ip(i: usize) -> Ipv4 {
    Ipv4::new(10, 0, 0, 10 + i as u8)
}

/// Address of client `j`.
pub fn client_ip(j: usize) -> Ipv4 {
    Ipv4(Ipv4::new(10, 0, 1, 0).0 + 1 + j as u32)
}

/// The gateway's address.
pub const GATEWAY_IP: Ipv4 = Ipv4::new(10, 0, 2, 1);

/// A running loopback NOOB cluster.
pub struct RealNoobCluster {
    /// The underlying thread-per-node runtime.
    pub runtime: UdpRuntime,
    /// Placement (same ring every node uses), for key-targeted tests.
    pub ring: NoobRing,
    /// Storage node addresses, index-aligned with [`NodeIdx`].
    pub server_ips: Vec<Ipv4>,
    /// Client addresses, index-aligned with `client_ops`.
    pub client_ips: Vec<Ipv4>,
}

impl RealNoobCluster {
    /// Bind sockets, spawn every node thread, and start serving. Clients
    /// begin issuing immediately.
    pub fn build(cfg: RealNoobCfg) -> RealNoobCluster {
        let spec = cfg.spec;
        let server_ips: Vec<Ipv4> = (0..spec.nodes).map(server_ip).collect();
        let ring = NoobRing {
            ring: PhysicalRing::new(
                spec.partition_count(),
                (0..spec.nodes as u32).map(NodeIdx).collect(),
                spec.replication,
            ),
            addrs: server_ips.clone(),
            port: 9000,
        };

        let codec = Arc::new(TpCodec::new(NoobCodec));
        let mut rt_cfg = RuntimeCfg::new(spec.seed, codec);
        rt_cfg.host = cfg.host.clone();
        let mut specs = Vec::new();
        for (i, &ip) in server_ips.iter().enumerate() {
            let ring = ring.clone();
            let (mode, storage, telemetry) = (cfg.mode, spec.storage, spec.telemetry);
            let wal_root = cfg.host.wal_root.clone();
            // The factory reruns on every restart: with a WAL root, each
            // incarnation replays what the previous one synced.
            specs.push(NodeSpec::new(ip, move || match &wal_root {
                Some(root) => Box::new(NoobServerApp::with_wal(
                    ring.clone(),
                    NodeIdx(i as u32),
                    mode,
                    storage,
                    telemetry,
                    root,
                )),
                None => Box::new(NoobServerApp::new(
                    ring.clone(),
                    NodeIdx(i as u32),
                    mode,
                    storage,
                    telemetry,
                )),
            }));
        }
        if let Some(policy) = cfg.gateway {
            let ring = ring.clone();
            specs.push(NodeSpec::new(GATEWAY_IP, move || {
                Box::new(GatewayApp::new(ring.clone(), policy))
            }));
        }
        let route = match cfg.gateway {
            Some(_) => ClientRoute::Gateway(GATEWAY_IP),
            None => ClientRoute::Direct {
                lb_gets: cfg.lb_gets,
            },
        };
        let retry = spec
            .retry
            .unwrap_or_else(|| RetryPolicy::fixed(Time::from_ms(500)));
        let mut client_ips = Vec::new();
        for (j, ops) in cfg.client_ops.iter().cloned().enumerate() {
            let ip = client_ip(j);
            client_ips.push(ip);
            let ring = ring.clone();
            let op_deadline = spec.op_deadline;
            let telemetry = spec.telemetry;
            specs.push(NodeSpec::new(ip, move || {
                let ops: Vec<ClientOp> = ops.iter().cloned().map(RealOp::materialize).collect();
                let mut app = NoobClientApp::new(ring.clone(), route, ops, Time::from_ms(5));
                app.retry = retry;
                app.op_deadline = op_deadline;
                app.tel = Telemetry::new(&telemetry);
                Box::new(app)
            }));
        }

        RealNoobCluster {
            runtime: UdpRuntime::spawn(rt_cfg, specs),
            ring,
            server_ips,
            client_ips,
        }
    }

    /// Run `f` against client `j`'s app inside its node thread.
    pub fn with_client<R: Send + 'static>(
        &self,
        j: usize,
        f: impl FnOnce(&mut NoobClientApp) -> R + Send + 'static,
    ) -> R {
        self.runtime.with(client_ip(j), move |app| {
            let any: &mut dyn Any = app;
            let client = any
                .downcast_mut::<NoobClientApp>()
                .expect("node hosts a NoobClientApp");
            f(client)
        })
    }

    /// Queue more work on a live client (picked up by its idle poll).
    pub fn push_client_ops(&self, j: usize, ops: Vec<RealOp>) {
        self.with_client(j, move |c| {
            c.core_mut()
                .push_ops(ops.into_iter().map(RealOp::materialize));
        });
    }

    /// `(attempt count, key)` of client `j`'s in-flight op, if any.
    pub fn client_inflight(&self, j: usize) -> Option<(u32, String)> {
        self.with_client(j, |c| {
            c.core()
                .inflight_detail()
                .map(|(op, _, _, attempts)| (attempts, op.key().to_string()))
        })
    }

    /// Completed-op count for client `j`.
    pub fn client_completed(&self, j: usize) -> usize {
        self.with_client(j, |c| c.completed())
    }

    /// True once every client has drained its op list.
    pub fn all_done(&self) -> bool {
        (0..self.client_ips.len()).all(|j| self.with_client(j, |c| c.is_done()))
    }

    /// Completion records of client `j` (cloned out of the node thread;
    /// the raw bytes survive for value assertions).
    pub fn client_records(&self, j: usize) -> Vec<OpRecord> {
        self.with_client(j, |c| c.records.clone())
    }

    /// One [`History`] over everything every client observed, built
    /// fragment-by-fragment inside the client threads.
    pub fn history(&self) -> History {
        let mut history = History::new();
        for j in 0..self.client_ips.len() {
            let ip = client_ip(j);
            let fragment = self.with_client(j, move |c| {
                let mut h = History::new();
                h.record_client(ip, c.core());
                h
            });
            history.merge(fragment);
        }
        history
    }

    /// Cluster-wide telemetry snapshot harvested from every live node
    /// thread: server registries (engine counters, WAL/store totals,
    /// transport repair stats, phase histograms) merged with client
    /// registries (wall-clock end-to-end latency, retries). Nodes that
    /// are down are skipped.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::default();
        for i in 0..self.server_ips.len() {
            let snap = self.runtime.try_with(server_ip(i), |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<NoobServerApp>().map(|s| s.metrics())
            });
            if let Some(Some(sm)) = snap {
                m.merge(&sm);
            }
        }
        for j in 0..self.client_ips.len() {
            let snap = self.runtime.try_with(client_ip(j), |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<NoobClientApp>().map(|c| c.metrics())
            });
            if let Some(Some(cm)) = snap {
                m.merge(&cm);
            }
        }
        m
    }

    /// Kill storage node `i` for good (thread exits, socket closes;
    /// in-flight datagrams to it are really lost).
    pub fn kill_server(&mut self, i: usize) {
        self.runtime.kill(server_ip(i));
    }

    /// Crash storage node `i` restartably: volatile state is dropped,
    /// the WAL directory (if configured) survives, and the socket stays
    /// bound so [`RealNoobCluster::restart_server`] resumes the same
    /// identity.
    pub fn crash_server(&self, i: usize) {
        self.runtime.crash(server_ip(i));
    }

    /// Restart a crashed storage node: the factory rebuilds the app,
    /// WAL replay restores acked state, and the rejoin sync phase
    /// catches up on the rest before it serves gets again.
    pub fn restart_server(&self, i: usize) {
        self.runtime.restart(server_ip(i));
    }

    /// WAL records server `i`'s current incarnation replayed at boot
    /// (`None` while the node is down).
    pub fn server_recovered(&self, i: usize) -> Option<usize> {
        self.runtime.try_with(server_ip(i), |app| {
            let any: &mut dyn Any = app;
            any.downcast_mut::<NoobServerApp>().map(|s| s.recovered())
        })?
    }

    /// Is server `i` up and past its rejoin sync phase?
    pub fn server_ready(&self, i: usize) -> bool {
        self.runtime
            .try_with(server_ip(i), |app| {
                let any: &mut dyn Any = app;
                any.downcast_mut::<NoobServerApp>()
                    .is_some_and(|s| !s.is_syncing())
            })
            .unwrap_or(false)
    }

    /// Stop all node threads.
    pub fn shutdown(&mut self) {
        self.runtime.shutdown();
    }
}

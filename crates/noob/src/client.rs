//! The NOOB client: drives operations through one of the three access
//! mechanisms of §2.1 (ROG gateway, RAG gateway, or RAC direct routing).

use std::collections::VecDeque;

use nice_kv::{ClientOp, KvError, OpId, OpRecord};
use nice_sim::Rng;
use nice_sim::{App, Ctx, Ipv4, Packet, Time};
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};

use crate::msg::NoobMsg;
use crate::server::NoobRing;

const TOK_START: u64 = 1;
const IDLE_POLL: Time = Time::from_ms(10);
const TOK_RETRY_BASE: u64 = 1 << 32;
const NOT_FOUND_BACKOFF: Time = Time::from_ms(5);

/// Where this client sends its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientRoute {
    /// Through a gateway at this address (ROG or RAG deployments).
    Gateway(Ipv4),
    /// Directly to the responsible node (RAC with a warm metadata cache).
    /// `lb_gets` additionally spreads gets over replicas client-side (the
    /// weaker-consistency client-side balancing of §4.5's discussion).
    Direct {
        /// Spread gets over replicas.
        lb_gets: bool,
    },
    /// The literal §2.1 RAC: "the clients cache the metadata of
    /// previously accessed objects". Cold keys go to a random storage
    /// node (which forwards, one extra hop); the responsible node is
    /// learned from the reply and cached for subsequent requests.
    CachingRac,
}

struct InFlight {
    op: ClientOp,
    id: OpId,
    start: Time,
    attempts: u32,
}

/// The NOOB client application (closed-loop, like the NICE client).
pub struct NoobClientApp {
    ring: NoobRing,
    route: ClientRoute,
    /// key → responsible node, learned from replies (CachingRac).
    cache: std::collections::HashMap<String, Ipv4>,
    /// Cache statistics: (hits, misses).
    pub cache_stats: (u64, u64),
    tp: Transport,
    ops: VecDeque<ClientOp>,
    start_at: Time,
    inflight: Option<InFlight>,
    next_seq: u64,
    retry: Time,
    max_attempts: u32,
    /// Treat NotFound gets as transient and retry with a short backoff.
    pub retry_not_found: bool,
    /// Completed operations.
    pub records: Vec<OpRecord>,
    /// Set when the queue drains.
    pub done_at: Option<Time>,
}

impl NoobClientApp {
    /// A client running `ops` from `start_at` via `route`.
    pub fn new(
        ring: NoobRing,
        route: ClientRoute,
        ops: Vec<ClientOp>,
        start_at: Time,
    ) -> NoobClientApp {
        NoobClientApp {
            tp: Transport::new(ring.port),
            ring,
            route,
            cache: std::collections::HashMap::new(),
            cache_stats: (0, 0),
            ops: ops.into(),
            start_at,
            inflight: None,
            next_seq: 1,
            retry: Time::from_secs(2),
            max_attempts: 25,
            retry_not_found: false,
            records: Vec::new(),
            done_at: None,
        }
    }

    /// Queue more operations.
    pub fn push_ops(&mut self, ops: impl IntoIterator<Item = ClientOp>) {
        self.ops.extend(ops);
        if !self.ops.is_empty() {
            self.done_at = None;
        }
    }

    /// Mean latency of successful ops of one kind.
    pub fn mean_latency(&self, puts: bool) -> Option<Time> {
        let lats: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.is_put == puts && r.ok())
            .map(|r| (r.end - r.start).as_ns())
            .collect();
        if lats.is_empty() {
            None
        } else {
            Some(Time(lats.iter().sum::<u64>() / lats.len() as u64))
        }
    }

    fn issue_next(&mut self, ctx: &mut Ctx) {
        if self.inflight.is_some() {
            return;
        }
        let Some(op) = self.ops.pop_front() else {
            if self.done_at.is_none() {
                self.done_at = Some(ctx.now());
            }
            ctx.set_timer(IDLE_POLL, TOK_START);
            return;
        };
        let id = OpId {
            client: ctx.ip(),
            client_seq: self.next_seq,
        };
        self.next_seq += 1;
        self.inflight = Some(InFlight {
            op,
            id,
            start: ctx.now(),
            attempts: 0,
        });
        self.attempt(ctx);
    }

    fn attempt(&mut self, ctx: &mut Ctx) {
        let Some(inf) = self.inflight.as_mut() else {
            return;
        };
        inf.attempts += 1;
        let id = inf.id;
        let op = inf.op.clone();
        let dst = match (&self.route, &op) {
            (ClientRoute::Gateway(gw), _) => *gw,
            (ClientRoute::Direct { .. }, ClientOp::Put { key, .. }) => self.ring.primary_addr(key),
            (ClientRoute::Direct { lb_gets }, ClientOp::Get { key }) => {
                if *lb_gets {
                    let replicas = self.ring.replica_addrs(key);
                    replicas[ctx.rng().random_range(0..replicas.len())]
                } else {
                    self.ring.primary_addr(key)
                }
            }
            (ClientRoute::CachingRac, _) => match self.cache.get(op.key()) {
                Some(&addr) => {
                    self.cache_stats.0 += 1;
                    addr
                }
                None => {
                    // Cold: any node will forward to the responsible one.
                    self.cache_stats.1 += 1;
                    let i = ctx.rng().random_range(0..self.ring.addrs.len());
                    self.ring.addrs[i]
                }
            },
        };
        match op {
            ClientOp::Put { key, value } => {
                let size = value.size() + key.len() as u32 + 64;
                let msg = NoobMsg::Put {
                    key,
                    value,
                    op: id,
                    hops: 0,
                };
                self.tp
                    .tcp_send(ctx, dst, self.ring.port, Msg::new(msg, size));
            }
            ClientOp::Get { key } => {
                let size = key.len() as u32 + 64;
                let msg = NoobMsg::Get {
                    key,
                    op: id,
                    hops: 0,
                };
                self.tp
                    .tcp_send(ctx, dst, self.ring.port, Msg::new(msg, size));
            }
        }
        ctx.set_timer(self.retry, TOK_RETRY_BASE | id.client_seq);
    }

    fn complete(
        &mut self,
        result: Result<(), KvError>,
        size: u32,
        bytes: Option<Vec<u8>>,
        ctx: &mut Ctx,
    ) {
        let Some(inf) = self.inflight.take() else {
            return;
        };
        self.records.push(OpRecord {
            is_put: matches!(inf.op, ClientOp::Put { .. }),
            key: inf.op.key().to_owned(),
            start: inf.start,
            end: ctx.now(),
            result,
            attempts: inf.attempts,
            size,
            bytes,
        });
        self.issue_next(ctx);
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut Ctx) {
        for ev in events {
            let TransportEvent::Delivered { from, msg, .. } = ev else {
                continue;
            };
            // CachingRac: the responder is the responsible node — cache it.
            if self.route == ClientRoute::CachingRac {
                if let Some(inf) = self.inflight.as_ref() {
                    if msg.downcast::<NoobMsg>().is_some() {
                        self.cache.insert(inf.op.key().to_owned(), from.0);
                    }
                }
            }
            let Some(m) = msg.downcast::<NoobMsg>() else {
                continue;
            };
            match m {
                NoobMsg::PutReply { op, ok } => {
                    let (op, ok) = (*op, *ok);
                    if let Some(inf) = self.inflight.as_ref() {
                        if inf.id == op {
                            let size = match &inf.op {
                                ClientOp::Put { value, .. } => value.size(),
                                _ => 0,
                            };
                            let result = if ok {
                                Ok(())
                            } else {
                                Err(KvError::PutRejected {
                                    key: inf.op.key().to_owned(),
                                })
                            };
                            self.complete(result, size, None, ctx);
                        }
                    }
                }
                NoobMsg::GetReply { op, value } => {
                    let op = *op;
                    let (found, size, bytes) = match value {
                        Some(v) => (true, v.size(), Some(v.bytes.as_ref().clone())),
                        None => (false, 0, None),
                    };
                    if let Some(inf) = self.inflight.as_ref() {
                        if inf.id == op {
                            if !found && self.retry_not_found && inf.attempts < self.max_attempts {
                                ctx.set_timer(NOT_FOUND_BACKOFF, TOK_RETRY_BASE | op.client_seq);
                                continue;
                            }
                            let result = if found {
                                Ok(())
                            } else {
                                Err(KvError::NotFound {
                                    key: inf.op.key().to_owned(),
                                })
                            };
                            self.complete(result, size, bytes, ctx);
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

impl App for NoobClientApp {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.start_at.saturating_sub(ctx.now()), TOK_START);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if token == TOK_START {
            self.issue_next(ctx);
            return;
        }
        if token >= TOK_RETRY_BASE {
            let seq = token & 0xFFFF_FFFF;
            let (retry_now, err) = match self.inflight.as_ref() {
                Some(inf) if inf.id.client_seq == seq => (
                    inf.attempts < self.max_attempts,
                    KvError::RetriesExhausted {
                        key: inf.op.key().to_owned(),
                        attempts: inf.attempts,
                    },
                ),
                _ => return,
            };
            if retry_now {
                self.attempt(ctx);
            } else {
                self.complete(Err(err), 0, None, ctx);
            }
        }
    }

    fn on_crash(&mut self) {
        self.tp.on_crash();
        self.inflight = None;
    }
}

//! The NOOB client: drives operations through one of the three access
//! mechanisms of §2.1 (ROG gateway, RAG gateway, or RAC direct routing).
//!
//! The closed-loop engine (queue, retries, records) is the shared
//! [`kv_core::ClientCore`]; this file maps its attempts onto NOOB
//! routing: gateway indirection, client-side placement knowledge, or the
//! caching RAC of §2.1.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};

use kv_core::{
    Attempt, ClientCore, Issue, KvClient, ReplyAction, RetryAction, CTRL_MSG_BYTES, IDLE_POLL,
    NOT_FOUND_BACKOFF, TOK_RETRY_BASE, TOK_START,
};
use nice_kv::ClientOp;
use nice_transport::{Msg, Transport, TransportEvent, TRANSPORT_TICK};
use node_rt::{Ipv4, NodeApp, NodeIo, Packet, Rng, Time};

use crate::msg::NoobMsg;
use crate::server::NoobRing;

/// Where this client sends its requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientRoute {
    /// Through a gateway at this address (ROG or RAG deployments).
    Gateway(Ipv4),
    /// Directly to the responsible node (RAC with a warm metadata cache).
    /// `lb_gets` additionally spreads gets over replicas client-side (the
    /// weaker-consistency client-side balancing of §4.5's discussion).
    Direct {
        /// Spread gets over replicas.
        lb_gets: bool,
    },
    /// The literal §2.1 RAC: "the clients cache the metadata of
    /// previously accessed objects". Cold keys go to a random storage
    /// node (which forwards, one extra hop); the responsible node is
    /// learned from the reply and cached for subsequent requests.
    CachingRac,
}

/// The NOOB client application (closed-loop, like the NICE client).
///
/// Derefs to the shared [`ClientCore`] for records, completion state,
/// and workload management.
pub struct NoobClientApp {
    ring: NoobRing,
    route: ClientRoute,
    /// key → responsible node, learned from replies (CachingRac).
    cache: HashMap<String, Ipv4>,
    /// Cache statistics: (hits, misses).
    pub cache_stats: (u64, u64),
    tp: Transport,
    core: ClientCore,
}

impl Deref for NoobClientApp {
    type Target = ClientCore;

    fn deref(&self) -> &ClientCore {
        &self.core
    }
}

impl DerefMut for NoobClientApp {
    fn deref_mut(&mut self) -> &mut ClientCore {
        &mut self.core
    }
}

impl KvClient for NoobClientApp {
    fn core(&self) -> &ClientCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut ClientCore {
        &mut self.core
    }
}

impl NoobClientApp {
    /// A client running `ops` from `start_at` via `route`.
    pub fn new(
        ring: NoobRing,
        route: ClientRoute,
        ops: Vec<ClientOp>,
        start_at: Time,
    ) -> NoobClientApp {
        NoobClientApp {
            tp: Transport::new(ring.port),
            ring,
            route,
            cache: HashMap::new(),
            cache_stats: (0, 0),
            core: ClientCore::new(ops, Time::from_secs(2), start_at),
        }
    }

    /// Ask the core for the next attempt and put it on the wire.
    fn pump(&mut self, ctx: &mut dyn NodeIo) {
        match self.core.issue_next(ctx.ip(), ctx.now()) {
            Issue::Attempt(at) => self.send_attempt(at, ctx),
            Issue::Drained => ctx.set_timer(IDLE_POLL, TOK_START),
            Issue::Busy => {}
        }
    }

    fn send_attempt(&mut self, at: Attempt, ctx: &mut dyn NodeIo) {
        let id = at.id;
        let dst = match (&self.route, &at.op) {
            (ClientRoute::Gateway(gw), _) => *gw,
            (ClientRoute::Direct { .. }, ClientOp::Put { key, .. }) => self.ring.primary_addr(key),
            (ClientRoute::Direct { lb_gets }, ClientOp::Get { key }) => {
                if *lb_gets {
                    let replicas = self.ring.replica_addrs(key);
                    let i = ctx.rng().random_range(0..replicas.len().max(1));
                    replicas
                        .get(i)
                        .copied()
                        .unwrap_or_else(|| self.ring.primary_addr(key))
                } else {
                    self.ring.primary_addr(key)
                }
            }
            (ClientRoute::CachingRac, _) => match self.cache.get(at.op.key()) {
                Some(&addr) => {
                    self.cache_stats.0 += 1;
                    addr
                }
                None => {
                    // Cold: any node will forward to the responsible one.
                    self.cache_stats.1 += 1;
                    let i = ctx.rng().random_range(0..self.ring.addrs.len().max(1));
                    // An empty membership routes to the unroutable zero
                    // address: the attempt drops and retries, not panics.
                    self.ring.addrs.get(i).copied().unwrap_or(Ipv4(0))
                }
            },
        };
        match at.op {
            ClientOp::Put { key, value } => {
                let size = value.size() + key.len() as u32 + CTRL_MSG_BYTES;
                let msg = NoobMsg::Put {
                    key,
                    value,
                    op: id,
                    hops: 0,
                };
                self.tp
                    .tcp_send(ctx, dst, self.ring.port, Msg::new(msg, size));
            }
            ClientOp::Get { key } => {
                let size = key.len() as u32 + CTRL_MSG_BYTES;
                let msg = NoobMsg::Get {
                    key,
                    op: id,
                    hops: 0,
                };
                self.tp
                    .tcp_send(ctx, dst, self.ring.port, Msg::new(msg, size));
            }
        }
        ctx.set_timer(
            self.core.retry_delay(id, at.attempts),
            TOK_RETRY_BASE | id.client_seq,
        );
    }

    fn drive(&mut self, events: Vec<TransportEvent>, ctx: &mut dyn NodeIo) {
        for ev in events {
            let TransportEvent::Delivered { from, msg, .. } = ev else {
                continue;
            };
            // CachingRac: the responder is the responsible node — cache it.
            if self.route == ClientRoute::CachingRac {
                if let Some((op, _)) = self.core.inflight_op() {
                    if msg.downcast::<NoobMsg>().is_some() {
                        let key = op.key().to_owned();
                        self.cache.insert(key, from.0);
                    }
                }
            }
            let Some(m) = msg.downcast::<NoobMsg>() else {
                continue;
            };
            match m {
                NoobMsg::PutReply { op, ok } => match self.core.on_put_reply(*op, *ok, ctx.now()) {
                    ReplyAction::Done => self.pump(ctx),
                    ReplyAction::NotMine | ReplyAction::AwaitRetry | ReplyAction::Backoff => {}
                },
                NoobMsg::GetReply { op, value } => {
                    let (found, size, bytes) = match value {
                        Some(v) => (true, v.size(), Some(v.bytes.as_ref().clone())),
                        None => (false, 0, None),
                    };
                    match self.core.on_get_reply(*op, found, size, bytes, ctx.now()) {
                        ReplyAction::Done => self.pump(ctx),
                        ReplyAction::Backoff => {
                            ctx.set_timer(NOT_FOUND_BACKOFF, TOK_RETRY_BASE | op.client_seq);
                        }
                        ReplyAction::NotMine | ReplyAction::AwaitRetry => {}
                    }
                }
                _ => {}
            }
        }
    }
}

impl NodeApp for NoobClientApp {
    fn on_start(&mut self, ctx: &mut dyn NodeIo) {
        ctx.set_timer(self.core.start_at.saturating_sub(ctx.now()), TOK_START);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut dyn NodeIo) {
        let events = self.tp.on_packet(&pkt, ctx);
        self.drive(events, ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut dyn NodeIo) {
        if token == TRANSPORT_TICK {
            let events = self.tp.on_timer(token, ctx);
            self.drive(events, ctx);
            return;
        }
        if token == TOK_START {
            self.pump(ctx);
            return;
        }
        if token >= TOK_RETRY_BASE {
            match self.core.on_retry_timer(token & 0xFFFF_FFFF, ctx.now()) {
                RetryAction::Resend(at) => self.send_attempt(at, ctx),
                RetryAction::GaveUp => self.pump(ctx),
                RetryAction::Stale => {}
            }
        }
    }

    fn on_crash(&mut self) {
        self.tp.on_crash();
        self.core.on_crash();
    }
}

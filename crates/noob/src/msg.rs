//! The NOOB wire protocol: plain point-to-point messages, no network
//! cooperation (§2.1). Values, op ids, and timestamps are shared with
//! NICEKV so results are comparable object-for-object.

pub use nice_kv::{OpId, Timestamp, Value};
use nice_ring::NodeIdx;
use node_rt::Ipv4;

/// Access-mechanism configuration (§2.1 "Access Mechanism").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Replica-Oblivious Gateway: an off-the-shelf load balancer forwards
    /// each request to a *random* storage node (two extra hops).
    Rog,
    /// Replica-Aware Gateway: the gateway knows placement and forwards to
    /// the right node (one extra hop).
    Rag,
    /// Replica-Aware Client: the client caches placement and routes
    /// directly (no extra hop, but clients must know internals).
    Rac,
}

/// Replication/consistency configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoobMode {
    /// Primary-backup: the primary serves all puts *and* gets (Figure 2,
    /// solid arrows); no consistency protocol needed.
    PrimaryOnly,
    /// Two-phase commit across replicas (Figure 2, dashed arrows).
    TwoPc,
    /// Quorum writes: reply once `k` replicas (including the primary)
    /// hold the data; replication continues in the background (§6.3).
    Quorum {
        /// The write-set size.
        k: usize,
    },
    /// Chain replication (van Renesse & Schneider, §4.2 discussion): the
    /// put flows down the chain; the tail acknowledges the client.
    Chain,
}

/// Messages between NOOB processes (all over TCP, §2.1: "the network is
/// only used as a point-to-point communication medium").
#[derive(Debug, Clone)]
pub enum NoobMsg {
    /// Client (or gateway) put. `hops` counts forwarding steps so a
    /// mis-delivered request is forwarded at most twice.
    Put {
        /// The key.
        key: String,
        /// The value.
        value: Value,
        /// The attempt.
        op: OpId,
        /// Forwarding hops so far.
        hops: u8,
    },
    /// Client (or gateway) get.
    Get {
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
        /// Forwarding hops so far.
        hops: u8,
    },
    /// Server → client.
    PutReply {
        /// The attempt.
        op: OpId,
        /// Success?
        ok: bool,
    },
    /// Server → client.
    GetReply {
        /// The attempt.
        op: OpId,
        /// The value, if found.
        value: Option<Value>,
    },
    /// Primary → secondary: replicate (primary-only/quorum: store+ack;
    /// 2PC: prepare+lock+log+write).
    RepData {
        /// The key.
        key: String,
        /// The value.
        value: Value,
        /// The attempt.
        op: OpId,
        /// True under 2PC (lock + log); false = plain store.
        two_pc: bool,
    },
    /// Secondary → primary: data written.
    RepAck1 {
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
        /// Reporting node.
        from: NodeIdx,
    },
    /// Primary → secondary (2PC round 2): commit timestamp.
    RepTs {
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
        /// The commit timestamp.
        ts: Timestamp,
    },
    /// Secondary → primary: committed.
    RepAck2 {
        /// The key.
        key: String,
        /// The attempt.
        op: OpId,
        /// Reporting node.
        from: NodeIdx,
    },
    /// Chain replication: write locally then pass on; the tail replies to
    /// the client.
    ChainPut {
        /// The key.
        key: String,
        /// The value.
        value: Value,
        /// The attempt.
        op: OpId,
        /// Replicas still to visit (in order).
        remaining: Vec<Ipv4>,
        /// Who to acknowledge when the chain ends.
        client: Ipv4,
    },
    /// Restarted node → peer: the data-sync phase of the two-phase
    /// rejoin. The requester replayed its WAL and now asks each peer for
    /// committed objects it replicates, to catch up on everything acked
    /// while it was down.
    SyncReq {
        /// The rejoining node.
        from: NodeIdx,
    },
    /// Peer → restarted node: every committed object (with its commit
    /// timestamp) in partitions the requester replicates. Ordered apply
    /// on the receiver keeps newer local versions.
    SyncResp {
        /// `(key, value, commit timestamp)` triples.
        items: Vec<(String, Value, Timestamp)>,
    },
}

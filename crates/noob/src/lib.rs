//! # nice-noob — the network-oblivious (NOOB) baseline
//!
//! The comparison system of the paper's evaluation (§6): a conventional
//! key-value store in which "the network is only used as a point-to-point
//! communication medium" (§2.1). It reuses the same storage engine, value
//! types, and op records as NICEKV so results are directly comparable,
//! but replicates over unicast TCP from the primary and routes requests
//! through one of the three classic access mechanisms:
//!
//! * **ROG** — replica-oblivious gateway (random node, two extra hops),
//! * **RAG** — replica-aware gateway (one extra hop),
//! * **RAC** — replica-aware client (direct, but clients must know
//!   placement).
//!
//! Consistency modes: primary-only, two-phase commit, quorum writes, and
//! chain replication.

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod gateway;
pub mod msg;
pub mod real;
pub mod server;
pub mod wire;

pub use client::{ClientRoute, NoobClientApp};
pub use cluster::{NoobCluster, NoobClusterCfg};
pub use gateway::{GatewayApp, GatewayPolicy};
pub use msg::{Access, NoobMode, NoobMsg};
pub use real::{RealNoobCfg, RealNoobCluster, RealOp};
pub use server::{NoobRing, NoobServerApp};
pub use wire::NoobCodec;

//! Head-to-head: the paper's headline comparison in miniature.
//!
//! One client puts 100 objects of increasing size into (a) NICEKV and
//! (b) the NOOB baseline with replica-aware clients, both at R=3; we
//! print mean put latency and the total network load. The switch-multicast
//! advantage grows with object size.
//!
//! Run with: `cargo run --release --example nice_vs_noob`

use nice::kv::{ClientOp, ClusterCfg, NiceCluster, Value};
use nice::noob::{Access, NoobCluster, NoobClusterCfg, NoobMode};
use nice::sim::Time;

fn ops(size: u32, n: usize) -> Vec<ClientOp> {
    (0..n)
        .map(|i| ClientOp::Put {
            key: format!("obj-{size}-{i}"),
            value: Value::synthetic(size),
        })
        .collect()
}

fn mean_us(records: &[nice::kv::OpRecord]) -> f64 {
    let lats: Vec<f64> = records
        .iter()
        .filter(|r| r.ok())
        .map(|r| (r.end - r.start).as_ns() as f64 / 1e3)
        .collect();
    lats.iter().sum::<f64>() / lats.len() as f64
}

fn main() {
    const N: usize = 100;
    println!(
        "{:>8} | {:>12} {:>12} | {:>9} | {:>10} {:>10}",
        "size", "NICE put", "NOOB put", "speedup", "NICE net", "NOOB net"
    );
    println!("{}", "-".repeat(74));
    for size in [1u32 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20] {
        let mut nice_c = NiceCluster::build(ClusterCfg::new(15, 3, vec![ops(size, N)]));
        assert!(nice_c.run_until_done(Time::from_secs(300)));
        let nice_lat = mean_us(&nice_c.client(0).records);
        let nice_net = nice_c.sim.total_link_bytes();

        let mut noob_c = NoobCluster::build(NoobClusterCfg::new(
            15,
            3,
            Access::Rac,
            NoobMode::PrimaryOnly,
            vec![ops(size, N)],
        ));
        assert!(noob_c.run_until_done(Time::from_secs(300)));
        let noob_lat = mean_us(&noob_c.client(0).records);
        let noob_net = noob_c.sim.total_link_bytes();

        println!(
            "{:>7}K | {:>10.0}us {:>10.0}us | {:>8.2}x | {:>8}MB {:>8}MB",
            size >> 10,
            nice_lat,
            noob_lat,
            noob_lat / nice_lat,
            nice_net / 1_000_000,
            noob_net / 1_000_000,
        );
    }
    println!(
        "\nNICE multicasts each put once (the switch replicates); NOOB's primary\n\
         relays R-1 unicast copies over its own uplink — slower and heavier."
    );
}

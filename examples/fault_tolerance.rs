//! Fault-tolerance walkthrough (the §4.4 machinery, live):
//!
//! 1. a client continuously writes/reads one partition,
//! 2. a secondary replica crashes — the metadata service hides it from
//!    both virtual rings and installs a handoff node,
//! 3. the node restarts — it rejoins the put ring first, drains the
//!    handoff, and only then becomes visible to gets again.
//!
//! Run with: `cargo run --example fault_tolerance`

use nice::kv::{ClientOp, ClusterCfg, MetaEvent, NiceCluster, Value};
use nice::ring::PartitionId;
use nice::sim::Time;

fn main() {
    // Pin all keys to partition 0 so one replica set serves everything.
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, vec![]));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 30);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[1];
    drop(probe);

    let mut ops = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        ops.push(ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(format!("v{i}").into_bytes()),
        });
        ops.push(ClientOp::Get { key: k.clone() });
    }

    let mut cfg = ClusterCfg::new(8, 3, vec![ops]);
    cfg.kv.hb_interval = Time::from_ms(200);
    cfg.kv.op_timeout = Time::from_ms(200);
    cfg.kv.client_retry = Time::from_ms(500);
    cfg.host.client_start = Time::from_ms(100);
    let mut cluster = NiceCluster::build(cfg);

    println!(
        "partition {:?} replicas: {replicas:?}; crashing node{victim} at t=60ms",
        p.0
    );
    cluster
        .sim
        .schedule_crash(Time::from_ms(60), cluster.servers[victim as usize]);
    cluster
        .sim
        .schedule_restart(Time::from_secs(4), cluster.servers[victim as usize]);

    cluster.run_until_done(Time::from_secs(30));
    cluster
        .sim
        .run_until(Time::from_secs(10).max(cluster.sim.now()));

    println!("\nmetadata-service event log:");
    for (t, ev) in &cluster.meta_app().events {
        let what = match ev {
            MetaEvent::NodeFailed(n) => {
                format!("node{} declared FAILED (hidden from both vrings)", n.0)
            }
            MetaEvent::HandoffAssigned {
                partition,
                failed,
                handoff,
            } => format!(
                "handoff: node{} stands in for node{} on partition {}",
                handoff.0, failed.0, partition.0
            ),
            MetaEvent::PrimaryChanged {
                partition,
                new_primary,
            } => {
                format!(
                    "node{} promoted to primary of partition {}",
                    new_primary.0, partition.0
                )
            }
            MetaEvent::NodeRejoining(n) => format!("node{} rejoining (put ring only)", n.0),
            MetaEvent::NodeRecovered(n) => {
                format!("node{} consistent again (get ring restored)", n.0)
            }
            MetaEvent::Promoted => "standby metadata service promoted to active".into(),
        };
        println!("  [{t}] {what}");
    }

    let recs = &cluster.client(0).records;
    let retried = recs.iter().filter(|r| r.attempts > 1).count();
    let failed = recs.iter().filter(|r| !r.ok()).count();
    println!(
        "\nclient: {} ops, {} needed retries (the <2s unavailability window), {} failed",
        recs.len(),
        retried,
        failed
    );

    let store = cluster.server(victim as usize).store();
    let have = keys.iter().filter(|k| store.get(k).is_some()).count();
    println!(
        "recovered node{victim} holds {have}/{} objects after draining the handoff",
        keys.len()
    );
}

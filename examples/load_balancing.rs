//! In-network load balancing (§4.5), demonstrated: six clients hammer one
//! hot key with and without the source-prefix division rules, and we
//! count which replicas actually served the gets.
//!
//! Run with: `cargo run --example load_balancing`

use nice::kv::{ClientOp, ClusterCfg, NiceCluster, Value};
use nice::sim::Time;

const KEY: &str = "hot-object";

fn run(lb: bool) -> (Vec<u64>, f64) {
    let mut all = vec![vec![ClientOp::Put {
        key: KEY.into(),
        value: Value::from_bytes(b"popular".to_vec()),
    }]];
    for _ in 0..6 {
        all.push(
            (0..200)
                .map(|_| ClientOp::Get { key: KEY.into() })
                .collect(),
        );
    }
    let mut cfg = ClusterCfg::new(8, 3, all);
    cfg.kv.load_balancing = lb;
    cfg.spec.retry_not_found = true;
    let mut c = NiceCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(120)));
    let p = c.ring.partition_of_key(KEY.as_bytes());
    let served: Vec<u64> = c
        .ring
        .replica_set(p)
        .iter()
        .map(|n| {
            c.server(n.0 as usize)
                .metrics()
                .counter("engine.gets_served")
        })
        .collect();
    let mean_get: f64 = {
        let mut lats = Vec::new();
        for i in 1..7 {
            for r in &c.client(i).records {
                if r.ok() && !r.is_put {
                    lats.push((r.end - r.start).as_ns() as f64 / 1000.0);
                }
            }
        }
        lats.iter().sum::<f64>() / lats.len() as f64
    };
    (served, mean_get)
}

fn main() {
    println!("six clients each reading one hot key 200 times (R=3):\n");
    let (served, lat) = run(false);
    println!("load balancing OFF: per-replica gets served = {served:?}");
    println!("                    mean get latency = {lat:.0}us  (primary does everything)\n");
    let (served, lat) = run(true);
    println!("load balancing ON : per-replica gets served = {served:?}");
    println!(
        "                    mean get latency = {lat:.0}us  (source-prefix rules spread the load)"
    );
    println!(
        "\nThe controller installs one (client-division, partition-subgroup) rule per\n\
         division at higher priority than the base vring rule; clients in different\n\
         divisions are rewritten to different replicas with zero extra hops."
    );
}

//! The SDN substrate by itself: build a little OpenFlow network with
//! `nice-sim` + `nice-flow`, install a virtual-address rewrite rule and a
//! multicast group by hand, and watch a packet get replicated.
//!
//! This is the §3.2 mechanism with no storage system on top.
//!
//! Run with: `cargo run --example sdn_playground`

use std::cell::RefCell;
use std::rc::Rc;

use nice::flow::{prio, Action, FlowMatch, FlowRule, FlowSwitch, FlowTable, GroupBucket, GroupId};
use nice::sim::{App, ChannelCfg, Ctx, HostCfg, Ipv4, Mac, Packet, Simulation, SwitchCfg, Time};

/// Counts what it receives.
#[derive(Default)]
struct Sink {
    got: Vec<(Ipv4, u32)>,
}
impl App for Sink {
    fn on_packet(&mut self, pkt: Packet, _ctx: &mut Ctx) {
        self.got.push((pkt.dst, pkt.wire_size));
    }
}

/// Sends one packet to a *virtual* address on start.
struct Talker {
    vaddr: Ipv4,
}
impl App for Talker {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let pkt = Packet::udp(
            ctx.ip(),
            ctx.mac(),
            self.vaddr,
            1111,
            2222,
            400,
            Rc::new("payload"),
        );
        ctx.send(pkt);
    }
}

fn main() {
    let mut sim = Simulation::new(1);
    let table = Rc::new(RefCell::new(FlowTable::new()));
    let sw = sim.add_switch(
        Box::new(FlowSwitch::new(Rc::clone(&table))),
        SwitchCfg::default(),
    );

    // Three servers and one client.
    let mut hosts = Vec::new();
    for i in 0..4u8 {
        let ip = Ipv4::new(10, 0, 0, 1 + i);
        let mac = Mac(1 + i as u64);
        let app: Box<dyn App> = if i == 3 {
            Box::new(Talker {
                vaddr: Ipv4::new(10, 10, 1, 99),
            })
        } else {
            Box::new(Sink::default())
        };
        let h = sim.add_host(app, HostCfg::new(ip, mac));
        let port = sim.connect(h, sw, ChannelCfg::gigabit());
        hosts.push((h, ip, mac, port));
    }

    {
        let mut t = table.borrow_mut();
        // Unicast vring rule: anything in 10.10.1.0/24 is rewritten to
        // server 0 — the paper's §3.2 single-hop virtual routing.
        let (h0_ip, h0_mac, h0_port) = (hosts[0].1, hosts[0].2, hosts[0].3);
        t.install(
            FlowRule::new(
                prio::VRING,
                FlowMatch::any().dst_prefix(Ipv4::new(10, 10, 1, 0), 24),
                vec![
                    Action::SetIpDst(h0_ip),
                    Action::SetMacDst(h0_mac),
                    Action::Output(h0_port),
                ],
            ),
            Time::ZERO,
        );
        // Multicast vring rule: 10.11.1.0/24 fans out to all three
        // servers with per-bucket rewrites — §4.2 in three lines.
        let buckets = (0..3)
            .map(|i| GroupBucket::rewrite_to(hosts[i].1, hosts[i].2, hosts[i].3))
            .collect();
        t.set_group(GroupId(7), buckets, Time::ZERO);
        t.install(
            FlowRule::new(
                prio::VRING,
                FlowMatch::any().dst_prefix(Ipv4::new(10, 11, 1, 0), 24),
                vec![Action::Group(GroupId(7))],
            ),
            Time::ZERO,
        );
    }

    // 1. unicast: the talker sends to a vnode address...
    sim.run_until(Time::from_ms(1));
    println!(
        "unicast vring: server0 received {:?}",
        sim.app::<Sink>(hosts[0].0).got
    );
    assert_eq!(sim.app::<Sink>(hosts[0].0).got.len(), 1);
    assert_eq!(
        sim.app::<Sink>(hosts[0].0).got[0].0,
        hosts[0].1,
        "dst was rewritten to the physical address"
    );

    // 2. multicast: inject a packet to the multicast ring by reusing the
    //    talker (cheap trick: just add another talker host).
    let m = sim.add_host(
        Box::new(Talker {
            vaddr: Ipv4::new(10, 11, 1, 5),
        }),
        HostCfg::new(Ipv4::new(10, 0, 0, 9), Mac(9)),
    );
    sim.connect(m, sw, ChannelCfg::gigabit());
    sim.run_until(Time::from_ms(2));
    for (i, host) in hosts.iter().enumerate().take(3) {
        let got = &sim.app::<Sink>(host.0).got;
        println!("multicast vring: server{i} received {got:?}");
        assert!(got.iter().any(|&(dst, _)| dst == host.1));
    }
    println!(
        "\none packet in, three delivered — each copy rewritten to its replica's\n\
         physical address by the group buckets. total link bytes: {}",
        sim.total_link_bytes()
    );
}

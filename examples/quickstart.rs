//! Quickstart: stand up a NICE cluster, write and read a few objects, and
//! inspect where the switch put the replicas.
//!
//! Run with: `cargo run --example quickstart`

use nice::kv::{ClientOp, ClusterCfg, NiceCluster, Value};
use nice::sim::Time;

fn main() {
    // A 5-node cluster with replication level 3 and one client that puts
    // then gets three objects.
    let mut ops = Vec::new();
    for (k, v) in [("alpha", "one"), ("beta", "two"), ("gamma", "three")] {
        ops.push(ClientOp::Put {
            key: k.into(),
            value: Value::from_bytes(v.as_bytes().to_vec()),
        });
    }
    for k in ["alpha", "beta", "gamma"] {
        ops.push(ClientOp::Get { key: k.into() });
    }

    let mut cluster = NiceCluster::build(ClusterCfg::new(5, 3, vec![ops]));
    let finished = cluster.run_until_done(Time::from_secs(10));
    assert!(finished, "workload did not finish");

    println!("operation log (client 0):");
    for r in &cluster.client(0).records {
        let kind = if r.is_put { "PUT" } else { "GET" };
        let val = r
            .bytes
            .as_ref()
            .map(|b| format!(" -> {:?}", String::from_utf8_lossy(b)))
            .unwrap_or_default();
        println!(
            "  {kind} {:<6} ok={} latency={}{}",
            r.key,
            r.ok(),
            r.end - r.start,
            val
        );
    }

    println!("\nreplica placement (from the consistent-hashing ring):");
    for k in ["alpha", "beta", "gamma"] {
        let p = cluster.ring.partition_of_key(k.as_bytes());
        let replicas = cluster.ring.replica_set(p);
        let holders: Vec<String> = replicas
            .iter()
            .map(|n| {
                let has = cluster.server(n.0 as usize).store().get(k).is_some();
                format!("node{}{}", n.0, if has { "(✓)" } else { "(✗)" })
            })
            .collect();
        println!("  {k:<6} partition {:>2} -> {}", p.0, holders.join(", "));
    }

    println!(
        "\nswitch state: {} flow entries, {} multicast groups",
        cluster.meta_app().table_occupancy(cluster.sim.now()).0,
        cluster.meta_app().table_occupancy(cluster.sim.now()).1,
    );
    println!(
        "network: {} KB moved across all links, {} simulated events",
        cluster.sim.total_link_bytes() / 1024,
        cluster.sim.events_processed()
    );
}

//! Boot a *real* NOOB cluster — OS threads and UDP sockets on loopback,
//! no simulator — serve a mixed workload from two client threads, then
//! feed the combined history through the per-key linearizability checker.
//!
//! Run with: `cargo run --example real_cluster`

use std::time::{Duration, Instant};

use nice::noob::{RealNoobCfg, RealNoobCluster, RealOp};

fn main() {
    // Two clients alternate put/get over a small shared keyspace so the
    // checker has real read/write races to validate.
    let client_ops: Vec<Vec<RealOp>> = (0..2)
        .map(|j| {
            (0..100)
                .map(|i| {
                    let key = format!("user{}", (j * 31 + i * 7) % 16);
                    if i % 2 == 0 {
                        RealOp::Put {
                            key,
                            bytes: format!("c{j}-i{i}").into_bytes(),
                        }
                    } else {
                        RealOp::Get { key }
                    }
                })
                .collect()
        })
        .collect();

    // 3 storage nodes, replication 2, gateway routing — every node is a
    // thread with its own 127.0.0.1 UDP socket.
    let mut cluster = RealNoobCluster::build(RealNoobCfg::new(3, 2, client_ops));
    println!(
        "cluster up: {} servers, {} clients (loopback UDP)",
        cluster.server_ips.len(),
        cluster.client_ips.len()
    );

    let deadline = Instant::now() + Duration::from_secs(30);
    while !cluster.all_done() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(cluster.all_done(), "cluster did not drain the workload");

    for j in 0..cluster.client_ips.len() {
        let records = cluster.client_records(j);
        let ok = records.iter().filter(|r| r.ok()).count();
        println!("client {j}: {ok}/{} ops ok", records.len());
        for r in records.iter().take(4) {
            let kind = if r.is_put { "PUT" } else { "GET" };
            println!(
                "  {kind} {:<7} ok={} attempts={}",
                r.key,
                r.ok(),
                r.attempts
            );
        }
    }

    let history = cluster.history();
    let violations = history.check();
    println!(
        "history: {} completed ops, {} linearizability violation(s)",
        history.ok_count(),
        violations.len()
    );
    assert!(
        violations.is_empty(),
        "history must be per-key linearizable"
    );
    cluster.shutdown();
    println!("all node threads joined; done");
}

#!/bin/bash
# Regenerates every table and figure of the NICE (HPDC '17) evaluation at
# paper scale. Output: bench_results/*.csv (+ .log copies of stdout).
# Pass --quick to every binary for a fast smoke run.
set -e
cd "$(dirname "$0")"
ARGS="$@"

# Preflight: fmt, clippy, xtask lint, offline build + tests, plus the
# slow failure suites in release. Figures are only regenerated from a
# tree that passes the full gate.
./scripts/check.sh --release

mkdir -p bench_results
for fig in fig04_routing fig05_replication fig06_network_load fig07_load_ratio \
           fig08_quorum fig09_consistency fig10_load_balancing \
           fig11_fault_tolerance fig12_ycsb fault_sweep switch_scalability \
           membership_scalability ablation_replication ablation_lb; do
  echo "=== $fig ==="
  cargo run --release -p nice-bench --bin $fig -- $ARGS 2>&1 | tee bench_results/$fig.log
done

#!/bin/bash
# The full local gate: formatting, clippy (deny-level groups are set in
# [workspace.lints]), the project-specific static-analysis suite, and the
# offline build + tests. run_all_figures.sh runs this as a preflight so
# figures are never regenerated from a tree that fails the gate.
#
# Everything runs --offline: the workspace has no external dependencies
# (DESIGN.md §6) and must stay buildable without registry access.
set -e
cd "$(dirname "$0")/.."

echo "=== fmt ==="
cargo fmt --all --check

echo "=== clippy ==="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "=== xtask lint ==="
cargo run -q -p xtask --offline -- lint

echo "=== build (release) ==="
cargo build --release --offline --workspace

echo "=== tests ==="
cargo test -q --offline --workspace

echo "check.sh: all gates passed"

#!/bin/bash
# The full local gate: formatting, clippy (deny-level groups are set in
# [workspace.lints]), the project-specific static-analysis suite, and the
# offline build + tests. run_all_figures.sh runs this as a preflight so
# figures are never regenerated from a tree that fails the gate.
#
# Everything runs --offline: the workspace has no external dependencies
# (DESIGN.md §6) and must stay buildable without registry access.
#
# --release additionally runs the slow suites (the exhaustive 2PC
# interleaving checker, the fault-injection sweeps, and the failure
# tests) as optimized builds; run_all_figures.sh uses this mode so
# figures are never regenerated from a tree whose failure paths regress.
set -e -o pipefail
cd "$(dirname "$0")/.."

RELEASE=0
for arg in "$@"; do
  case "$arg" in
    --release) RELEASE=1 ;;
    *) echo "check.sh: unknown argument $arg" >&2; exit 2 ;;
  esac
done

echo "=== fmt ==="
cargo fmt --all --check

echo "=== clippy ==="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "=== xtask lint (baseline ratchet) ==="
# The byte-stable machine-readable report lands in target/ for tooling.
# A finding whose key is missing from lint_baseline.json fails the gate;
# a finding that disappeared shrinks the baseline in place (commit the
# shrunk file). See DESIGN.md §10 for the key format and rule list.
mkdir -p target
if ! cargo run -q -p xtask --offline -- lint --json > target/lint_report.json; then
  # Re-run human-readable so the offending call chains are on screen.
  cargo run -q -p xtask --offline -- lint
  exit 1
fi

echo "=== build (release) ==="
cargo build --release --offline --workspace

echo "=== kv-core (fast) ==="
# Includes the DPOR interleaving sweep: full 756,756-schedule coverage
# of the 3-put x 2-replica space by equivalence classes, plus the
# prefix-class failover space — in debug, every run (DESIGN.md §7).
cargo test -q --offline -p kv-core

echo "=== tests ==="
cargo test -q --offline --workspace

echo "=== chaos (fast seeds) ==="
# Two fixed seeds across all four cells (NICE/NOOB x 2PC/primary),
# linearizability-checked. CHAOS_SEED=<n> reruns any single seed.
cargo test -q --offline --test chaos

echo "=== runtime-smoke (real loopback UDP) ==="
# The real threaded runtime end to end: a 3-node NOOB cluster as OS
# threads + loopback sockets serves 1,000+ ops and a kill-one-node run;
# every history goes through the per-key linearizability checker
# (DESIGN.md §11). Release-built: wall-clock retries make debug too slow.
timeout 300 cargo test -q --offline --release --test real_cluster

echo "=== runtime-chaos (seeded storm on real sockets) ==="
# The crash–restart survivability gate (DESIGN.md §11): a WAL-backed
# 5-node cluster takes three seeded crash/restart hits under socket-
# level loss/duplication/delay; zero acknowledged writes may be lost and
# the combined history must linearize per key. CHAOS_SEED=<n> replays
# one schedule exactly. The nemesis fault counters and per-node recovery
# stats land next to the lint report for tooling.
timeout 600 cargo test --offline --release --test runtime_chaos -- --nocapture \
  2>&1 | tee target/runtime_chaos.log
grep -E '^(nemesis |plan seed=|crash node=|schedule )' target/runtime_chaos.log \
  > target/runtime_chaos_stats.txt || true
echo "runtime-chaos: stats archived in target/runtime_chaos_stats.txt"

echo "=== runtime-throughput (real cluster telemetry) ==="
# Wall-clock throughput + p50/p99/p99.9 from the loopback UDP cluster's
# telemetry histograms, clean and under the socket nemesis. The JSON is
# archived next to the lint report so perf PRs have a trajectory point
# to ratchet against.
timeout 300 cargo run -q --offline --release -p nice-bench \
  --bin runtime_throughput -- --quick
cp bench_results/runtime_throughput.json target/runtime_throughput.json
echo "runtime-throughput: archived in target/runtime_throughput.json"

if [ "$RELEASE" = 1 ]; then
  echo "=== slow suites (release) ==="
  # --include-ignored adds the brute-force 756,756-schedule enumeration
  # that cross-checks the fast tier's DPOR classes schedule for schedule.
  cargo test -q --offline --release -p kv-core --test lock_interleavings -- --include-ignored
  cargo test -q --offline --release -p nice-sim
  cargo test -q --offline --release -p nice --test failures
  # The full seeded chaos matrix: 8 seeds x 4 cells, every history
  # checked for per-key linearizability (DESIGN.md "Chaos harness").
  cargo test -q --offline --release --test chaos -- --include-ignored
fi

echo "check.sh: all gates passed"

//! YCSB workloads end-to-end through the facade: generator → clients →
//! cluster → verified results on both systems.

use nice::kv::{ClientOp, ClusterCfg, NiceCluster, OpRecord, Value};
use nice::noob::{Access, NoobCluster, NoobClusterCfg, NoobMode};
use nice::sim::Time;
use nice::workload::XorShiftRng;
use nice::workload::{OpKind, Workload, WorkloadRun};

/// Build per-client op lists: striped load phase + generated run phase.
fn build_ops(wl: &Workload, clients: usize, run_ops: usize, seed: u64) -> Vec<Vec<ClientOp>> {
    let mut per_client: Vec<Vec<ClientOp>> = vec![Vec::new(); clients];
    for i in 0..wl.records {
        per_client[(i % clients as u64) as usize].push(ClientOp::Put {
            key: wl.key(i),
            value: Value::from_bytes(format!("record-{i}").into_bytes()),
        });
    }
    for (j, ops) in per_client.iter_mut().enumerate() {
        let before = ops.len();
        let mut rng = XorShiftRng::seed_from_u64(seed ^ (j as u64 + 1));
        let mut gen = WorkloadRun::new(wl.clone());
        while ops.len() - before < run_ops {
            for op in gen.next_ops(&mut rng) {
                ops.push(match op.kind {
                    OpKind::Get => ClientOp::Get { key: op.key },
                    OpKind::Put => ClientOp::Put {
                        key: op.key,
                        value: Value::from_bytes(b"updated".to_vec()),
                    },
                });
            }
        }
    }
    per_client
}

#[test]
fn ycsb_c_on_nice_returns_valid_records() {
    let wl = Workload::c(40);
    let ops = build_ops(&wl, 4, 30, 7);
    let mut c = NiceCluster::build(ClusterCfg::new(8, 3, ops));
    assert!(c.run_until_done(Time::from_secs(120)));
    for cl in 0..4 {
        for r in &c.client(cl).records {
            assert!(r.ok(), "client {cl} op on {} failed", r.key);
            if !r.is_put {
                // C never updates, so every get returns the load value
                let b = r.bytes.as_ref().expect("value");
                assert!(
                    b.starts_with(b"record-"),
                    "{:?}",
                    String::from_utf8_lossy(b)
                );
            }
        }
    }
}

#[test]
fn ycsb_a_on_nice_mixes_reads_and_updates() {
    let wl = Workload::a(40);
    let ops = build_ops(&wl, 4, 30, 11);
    let mut c = NiceCluster::build(ClusterCfg::new(8, 3, ops));
    assert!(c.run_until_done(Time::from_secs(120)));
    let mut updated_seen = false;
    for cl in 0..4 {
        for r in &c.client(cl).records {
            assert!(r.ok());
            if let Some(b) = &r.bytes {
                // every returned value is either the load value or an update
                assert!(b.starts_with(b"record-") || b == b"updated");
                if b == b"updated" {
                    updated_seen = true;
                }
            }
        }
    }
    assert!(updated_seen, "some reads observe updates in workload A");
}

#[test]
fn ycsb_f_on_noob_2pc_completes() {
    let wl = Workload::f(40);
    let ops = build_ops(&wl, 4, 30, 13);
    let mut cfg =
        NoobClusterCfg::from_nice(&ClusterCfg::new(8, 3, ops), Access::Rac, NoobMode::TwoPc);
    cfg.lb_gets = true;
    let mut c = NoobCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(240)));
    for cl in 0..4 {
        assert!(c.client(cl).records.iter().all(OpRecord::ok), "client {cl}");
    }
}

#[test]
fn ycsb_d_inserts_new_records() {
    let wl = Workload::d(20);
    let ops = build_ops(&wl, 2, 40, 17);
    let mut c = NiceCluster::build(ClusterCfg::new(8, 3, ops));
    assert!(c.run_until_done(Time::from_secs(120)));
    // D inserts ~5% new keys beyond the loaded 20: at least one server
    // must hold a key user>=20.
    let fresh = (0..8).any(|i| {
        c.server(i).store().iter().any(|(k, _)| {
            k.strip_prefix("user")
                .and_then(|n| n.parse::<u64>().ok())
                .is_some_and(|n| n >= 20)
        })
    });
    assert!(fresh, "inserts created new records");
}

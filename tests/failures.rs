//! Failure-model tests through the facade: multiple failures, handoff
//! chains, metadata-service behavior, and the consistency-aware
//! visibility rules of §3.3/§4.4.

use nice::kv::{ClientOp, ClusterCfg, MetaEvent, NiceCluster, NodeState, OpRecord, Value};
use nice::ring::{NodeIdx, PartitionId};
use nice::sim::{FaultPlan, Ipv4, Time};

/// A cluster config with failure-detection timers tightened so crash /
/// rejoin tests converge in simulated seconds instead of minutes.
fn fast(nodes: usize, r: usize, ops: Vec<Vec<ClientOp>>) -> ClusterCfg {
    let mut cfg = ClusterCfg::new(nodes, r, ops);
    cfg.kv.hb_interval = Time::from_ms(100);
    cfg.kv.op_timeout = Time::from_ms(100);
    cfg.kv.client_retry = Time::from_ms(400);
    cfg
}

#[test]
fn two_secondaries_fail_and_system_survives() {
    let probe = NiceCluster::build(ClusterCfg::new(10, 3, Vec::new()));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 20);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    drop(probe);

    let mut ops = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        ops.push(ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(format!("w{i}").into_bytes()),
        });
        ops.push(ClientOp::Get { key: k.clone() });
    }
    let mut c = {
        let mut cfg = fast(10, 3, vec![ops]);
        cfg.host.client_start = Time::from_ms(100);
        NiceCluster::build(cfg)
    };
    // both secondaries die before the workload starts
    c.sim
        .schedule_crash(Time::from_ms(40), c.servers[replicas[1] as usize]);
    c.sim
        .schedule_crash(Time::from_ms(50), c.servers[replicas[2] as usize]);
    assert!(
        c.run_until_done(Time::from_secs(60)),
        "workload survives two failures"
    );
    assert!(c.client(0).records.iter().all(OpRecord::ok));
    // the view must now contain the primary + two handoffs
    let view = c.meta_app().view(p).expect("view");
    assert_eq!(view.members.len(), 3, "{view:?}");
    assert!(view.members.iter().any(|&(n, _)| n.0 == replicas[0]));
    assert!(!view
        .members
        .iter()
        .any(|&(n, _)| n.0 == replicas[1] || n.0 == replicas[2]));
}

#[test]
fn failed_node_is_invisible_to_gets_until_recovered() {
    // The consistency-aware fault tolerance core claim (§3.3): a
    // rejoining node must receive puts but never gets while inconsistent.
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, Vec::new()));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 10);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[1];
    drop(probe);

    let ops: Vec<ClientOp> = keys
        .iter()
        .map(|k| ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(b"x".to_vec()),
        })
        .collect();
    let mut c = {
        let mut cfg = fast(8, 3, vec![ops]);
        cfg.host.client_start = Time::from_secs(2);
        NiceCluster::build(cfg)
    };
    c.sim
        .schedule_crash(Time::from_ms(100), c.servers[victim as usize]);
    c.sim
        .schedule_restart(Time::from_secs(1), c.servers[victim as usize]);
    // While the node recovers it is Rejoining (put ring only).
    c.sim.run_until(Time::from_ms(1300));
    let state_mid = c.meta_app().node_state(NodeIdx(victim));
    assert!(c.run_until_done(Time::from_secs(30)));
    c.sim.run_for(Time::from_secs(3));
    let state_end = c.meta_app().node_state(NodeIdx(victim));
    assert_eq!(state_end, NodeState::Up);
    // the node was observed in the rejoining (hidden-from-gets) state, or
    // recovery completed before we sampled — either way the event log
    // must show the two-phase rejoin.
    let evs: Vec<&MetaEvent> = c.meta_app().events.iter().map(|(_, e)| e).collect();
    assert!(
        evs.contains(&&MetaEvent::NodeRejoining(NodeIdx(victim))),
        "{evs:?}"
    );
    assert!(evs.contains(&&MetaEvent::NodeRecovered(NodeIdx(victim))));
    let rejoin_pos = evs
        .iter()
        .position(|e| **e == MetaEvent::NodeRejoining(NodeIdx(victim)));
    let recover_pos = evs
        .iter()
        .position(|e| **e == MetaEvent::NodeRecovered(NodeIdx(victim)));
    assert!(
        rejoin_pos < recover_pos,
        "put ring strictly before get ring"
    );
    let _ = state_mid;
    // never served a get while inconsistent
    assert_eq!(
        c.server(victim as usize)
            .metrics()
            .counter("engine.gets_served"),
        0
    );
}

#[test]
fn handoff_failure_is_replaced() {
    // The handoff node itself fails: the metadata service must stand up a
    // replacement for the original failed node.
    let probe = NiceCluster::build(ClusterCfg::new(10, 3, Vec::new()));
    let p = PartitionId(0);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[1];
    drop(probe);

    let mut c = NiceCluster::build(fast(10, 3, vec![]));
    c.sim
        .schedule_crash(Time::from_ms(100), c.servers[victim as usize]);
    c.sim.run_until(Time::from_secs(1));
    let first_handoff = c
        .meta_app()
        .events
        .iter()
        .find_map(|(_, e)| match e {
            MetaEvent::HandoffAssigned {
                partition,
                failed,
                handoff,
            } if *partition == p && failed.0 == victim => Some(handoff.0),
            _ => None,
        })
        .expect("first handoff");
    // kill the handoff too
    c.sim
        .schedule_crash(Time::from_secs(1), c.servers[first_handoff as usize]);
    c.sim.run_until(Time::from_secs(3));
    let view = c.meta_app().view(p).expect("view");
    assert!(
        !view
            .members
            .iter()
            .any(|&(n, _)| n.0 == first_handoff || n.0 == victim),
        "dead nodes out of the view: {view:?}"
    );
    assert_eq!(
        view.members.len(),
        3,
        "replacement handoff installed: {view:?}"
    );
}

#[test]
fn primary_and_secondary_fail_together() {
    let probe = NiceCluster::build(ClusterCfg::new(10, 3, Vec::new()));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 10);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    drop(probe);

    let mut ops = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        ops.push(ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(format!("d{i}").into_bytes()),
        });
        ops.push(ClientOp::Get { key: k.clone() });
    }
    let mut c = {
        let mut cfg = fast(10, 3, vec![ops]);
        cfg.host.client_start = Time::from_ms(100);
        NiceCluster::build(cfg)
    };
    c.sim
        .schedule_crash(Time::from_ms(30), c.servers[replicas[0] as usize]);
    c.sim
        .schedule_crash(Time::from_ms(40), c.servers[replicas[1] as usize]);
    assert!(c.run_until_done(Time::from_secs(60)));
    assert!(c.client(0).records.iter().all(OpRecord::ok));
    // the remaining original secondary must be the new primary
    let view = c.meta_app().view(p).expect("view");
    assert_eq!(view.primary.0, replicas[2]);
}

#[test]
fn cluster_keeps_serving_unrelated_partitions_during_failure() {
    // A failure in one partition must not disturb puts/gets elsewhere.
    let probe = NiceCluster::build(ClusterCfg::new(10, 3, Vec::new()));
    let p_fail = PartitionId(0);
    let replicas: Vec<u32> = probe.ring.replica_set(p_fail).iter().map(|n| n.0).collect();
    // find a partition that shares no nodes with p_fail
    let mut other = None;
    for q in 0..probe.ring.num_partitions() {
        let q = PartitionId(q);
        let set: Vec<u32> = probe.ring.replica_set(q).iter().map(|n| n.0).collect();
        if set.iter().all(|n| !replicas.contains(n)) {
            other = Some(q);
            break;
        }
    }
    let other = other.expect("disjoint partition exists in a 10-node ring");
    let keys = probe.keys_in_partition(other, 15);
    drop(probe);

    let mut ops = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        ops.push(ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(format!("u{i}").into_bytes()),
        });
        ops.push(ClientOp::Get { key: k.clone() });
    }
    let mut c = {
        let mut cfg = fast(10, 3, vec![ops]);
        cfg.host.client_start = Time::from_ms(100);
        NiceCluster::build(cfg)
    };
    c.sim
        .schedule_crash(Time::from_ms(120), c.servers[replicas[0] as usize]);
    assert!(c.run_until_done(Time::from_secs(30)));
    let recs = &c.client(0).records;
    assert!(recs.iter().all(OpRecord::ok));
    // ops to the unrelated partition needed no retries
    assert!(
        recs.iter().all(|r| r.attempts == 1),
        "unrelated partition saw disruption"
    );
}

#[test]
fn full_cluster_crash_converges() {
    // §4.4 "In case of a complete cluster failure, in which all in-memory
    // locks are lost, the persistent logs on the nodes will identify the
    // latest put operations. The new primary will check them all using
    // the rules above."
    //
    // Crash every storage node mid-put at several points in the 2PC
    // timeline; after restart the replicas must converge: either the put
    // is committed with one timestamp everywhere, or it is gone
    // everywhere — never a mix visible to gets.
    for crash_offset_us in [800u64, 1300, 1500] {
        let probe = NiceCluster::build(ClusterCfg::new(8, 3, Vec::new()));
        let p = PartitionId(0);
        let key = probe.keys_in_partition(p, 1).remove(0);
        let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
        drop(probe);

        let ops = vec![ClientOp::Put {
            key: key.clone(),
            value: Value::from_bytes(vec![7u8; 64 * 1024]),
        }];
        let mut c = {
            let mut cfg = fast(8, 3, vec![ops]);
            cfg.kv.hb_interval = Time::from_ms(300);
            cfg.host.client_start = Time::from_ms(100);
            NiceCluster::build(cfg)
        };
        let crash_at = Time::from_ms(100) + Time::from_us(crash_offset_us);
        for &s in &c.servers.clone() {
            c.sim.schedule_crash(crash_at, s);
            c.sim.schedule_restart(Time::from_secs(3), s);
        }
        c.sim.run_until(Time::from_secs(12));

        // Convergence across the replica set: committed values (visible
        // to gets) must agree.
        let committed: Vec<Option<nice::kv::Timestamp>> = replicas
            .iter()
            .map(|&i| c.server(i as usize).store().get(&key).map(|cm| cm.ts))
            .collect();
        let versions: Vec<_> = committed.iter().flatten().collect();
        assert!(
            versions.windows(2).all(|w| w[0] == w[1]),
            "offset {crash_offset_us}us: replicas diverged: {committed:?}"
        );
        // No replica may still hold the lock (resolution settled it).
        for &i in &replicas {
            assert!(
                !c.server(i as usize).store().locked(&key),
                "offset {crash_offset_us}us: node{i} still locked"
            );
        }
        // The client either got its put through (possibly via retries) or
        // saw a clean failure; with retries running for 12s it should
        // normally succeed once the cluster is back.
        let recs = &c.client(0).records;
        if let Some(r) = recs.first() {
            if r.ok() {
                // success implies every surviving committed copy is this put
                assert!(!versions.is_empty(), "client success but nothing committed");
            }
        }
    }
}

#[test]
fn admin_add_node_expands_ring_with_synced_data() {
    use nice::kv::AdminOp;
    // 6-node ring + 1 provisioned spare. Write data, admin-add the spare,
    // and verify it ends up serving partitions with fully synced data.
    let mut ops = Vec::new();
    for i in 0..30 {
        ops.push(ClientOp::Put {
            key: format!("pre{i}"),
            value: Value::from_bytes(format!("v{i}").into_bytes()),
        });
    }
    let mut c = {
        let mut cfg = fast(6, 3, vec![ops]);
        cfg.spec.spares = 1;
        NiceCluster::build(cfg)
    };
    assert!(c.run_until_done(Time::from_secs(30)));

    let spare = NodeIdx(6);
    c.admin(AdminOp::AddNode(spare));
    c.sim.run_for(Time::from_secs(5));

    // the spare is now in the ring and holds data for its partitions
    let meta = c.meta_app();
    let mut serves = 0;
    let mut holds = 0;
    for p in 0..c.cfg.partitions {
        let p = PartitionId(p);
        if let Some(v) = meta.view(p) {
            if v.members.iter().any(|&(n, _)| n == spare) {
                serves += 1;
                assert!(
                    !v.syncing.contains(&spare),
                    "partition {} still syncing",
                    p.0
                );
            }
        }
    }
    for i in 0..30 {
        let key = format!("pre{i}");
        let p = c.partition_of_key(&key);
        let view = c.meta_app().view(p).expect("view");
        if view.members.iter().any(|&(n, _)| n == spare) {
            if c.server(6).store().get(&key).is_some() {
                holds += 1;
            } else {
                panic!("spare serves {key}'s partition but lacks the object");
            }
        }
    }
    assert!(serves > 0, "spare joined at least one replica set");
    let _ = holds;

    // and reads of the pre-existing data still succeed end-to-end
    c.sim
        .app_mut::<nice::kv::ClientApp>(c.clients[0])
        .push_ops((0..30).map(|i| ClientOp::Get {
            key: format!("pre{i}"),
        }));
    assert!(c.run_until_done(Time::from_secs(30)));
    let recs = &c.client(0).records;
    assert!(
        recs[30..].iter().all(OpRecord::ok),
        "post-reconfig reads succeed"
    );
}

#[test]
fn admin_remove_node_keeps_data_available() {
    use nice::kv::AdminOp;
    let mut ops = Vec::new();
    for i in 0..30 {
        ops.push(ClientOp::Put {
            key: format!("rm{i}"),
            value: Value::from_bytes(format!("v{i}").into_bytes()),
        });
    }
    let mut c = NiceCluster::build(fast(8, 3, vec![ops]));
    assert!(c.run_until_done(Time::from_secs(30)));

    let victim = NodeIdx(2);
    c.admin(AdminOp::RemoveNode(victim));
    c.sim.run_for(Time::from_secs(5));

    // victim serves nothing anymore
    for p in 0..c.cfg.partitions {
        let view = c.meta_app().view(PartitionId(p)).expect("view");
        assert!(
            !view.members.iter().any(|&(n, _)| n == victim),
            "partition {p} still lists the removed node"
        );
        assert!(view.syncing.is_empty(), "partition {p} still syncing");
    }
    // every object is still fully replicated R times among the others
    for i in 0..30 {
        let key = format!("rm{i}");
        let holders = (0..8)
            .filter(|&s| s != victim.0 as usize && c.server(s).store().get(&key).is_some())
            .count();
        assert!(holders >= 3, "{key} has only {holders} live replicas");
    }
    // reads still work
    c.sim
        .app_mut::<nice::kv::ClientApp>(c.clients[0])
        .push_ops((0..30).map(|i| ClientOp::Get {
            key: format!("rm{i}"),
        }));
    assert!(c.run_until_done(Time::from_secs(30)));
    assert!(c.client(0).records[30..].iter().all(OpRecord::ok));
}

#[test]
fn metadata_standby_takes_over() {
    use nice::kv::{MetaRole, MetadataApp};
    // §4.1's hot-standby design, implemented: the active metadata service
    // dies mid-run; the standby promotes itself, redirects node
    // reporting, and continues to handle failures (a storage node crash
    // AFTER the failover still gets a handoff).
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, Vec::new()));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 30);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[1];
    drop(probe);

    let mut ops = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        ops.push(ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(format!("s{i}").into_bytes()),
        });
        ops.push(ClientOp::Get { key: k.clone() });
    }
    let mut c = {
        let mut cfg = fast(8, 3, vec![ops]);
        cfg.metadata_standby = true;
        cfg.host.client_start = Time::from_ms(100);
        NiceCluster::build(cfg)
    };
    let standby = c.meta_standby.expect("standby deployed");

    // 1. kill the active metadata service early
    c.sim.schedule_crash(Time::from_ms(200), c.meta);
    // 2. then kill a storage secondary — only the promoted standby can
    //    orchestrate the handoff
    c.sim
        .schedule_crash(Time::from_secs(3), c.servers[victim as usize]);

    assert!(
        c.run_until_done(Time::from_secs(60)),
        "initial workload finishes"
    );
    // run through the failover + storage-failure timeline, then push a
    // second wave of ops that only a working (promoted) metadata path can
    // serve
    c.sim.run_until(Time::from_secs(6));
    c.sim
        .app_mut::<nice::kv::ClientApp>(c.clients[0])
        .push_ops(keys.iter().map(|k| ClientOp::Get { key: k.clone() }));
    assert!(
        c.run_until_done(Time::from_secs(60)),
        "post-failover workload finishes"
    );
    assert!(c.client(0).records.iter().all(OpRecord::ok));

    let sb = c.sim.app::<MetadataApp>(standby);
    assert_eq!(sb.role(), MetaRole::Active, "standby promoted itself");
    assert!(
        sb.events.iter().any(|(_, e)| *e == MetaEvent::Promoted),
        "{:?}",
        sb.events
    );
    assert!(
        sb.events
            .iter()
            .any(|(_, e)| *e == MetaEvent::NodeFailed(NodeIdx(victim))),
        "the promoted standby detected the storage failure: {:?}",
        sb.events
    );
    assert!(
        sb.events.iter().any(
            |(_, e)| matches!(e, MetaEvent::HandoffAssigned { failed, .. } if failed.0 == victim)
        ),
        "and installed a handoff"
    );
}

#[test]
fn rejoin_after_handoff_chain_failure_recovers_all_writes() {
    // Regression: node f fails; handoff n receives writes; n itself then
    // fails and is replaced. When f rejoins, its drain source chain was
    // broken — it must still recover every object written during its
    // outage (via the replacement handoff or the primary fallback).
    let probe = NiceCluster::build(ClusterCfg::new(10, 3, Vec::new()));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 12);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let f = replicas[1];
    drop(probe);

    // All writes happen while f is down; half of them before the first
    // handoff dies, half after.
    let ops: Vec<ClientOp> = keys
        .iter()
        .map(|k| ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(b"during-outage".to_vec()),
        })
        .collect();
    let mut c = {
        let mut cfg = fast(10, 3, vec![ops]);
        cfg.host.client_start = Time::from_secs(1); // after f's failure is handled
        NiceCluster::build(cfg)
    };
    c.sim
        .schedule_crash(Time::from_ms(100), c.servers[f as usize]);
    // let the first batch of writes land on the first handoff
    assert!(c.run_until_done(Time::from_secs(30)));
    let first_handoff = c
        .meta_app()
        .events
        .iter()
        .find_map(|(_, e)| match e {
            MetaEvent::HandoffAssigned {
                partition,
                failed,
                handoff,
            } if *partition == p && failed.0 == f => Some(handoff.0),
            _ => None,
        })
        .expect("handoff for f");
    // now the handoff itself dies, then f comes back
    c.sim
        .schedule_crash(c.sim.now(), c.servers[first_handoff as usize]);
    c.sim.run_for(Time::from_secs(2));
    c.sim.schedule_restart(c.sim.now(), c.servers[f as usize]);
    c.sim.run_for(Time::from_secs(5));

    // f must hold every object written during its outage
    let store = c.server(f as usize).store();
    let missing: Vec<&String> = keys.iter().filter(|k| store.get(k).is_none()).collect();
    assert!(
        missing.is_empty(),
        "rejoined node missing {} objects written during its outage: {missing:?}",
        missing.len()
    );
}

#[test]
fn rejoining_node_with_lost_catchup_stays_off_get_ring() {
    // §3.3 under injected faults: the victim restarts onto the put vring,
    // but a fault-plan partition swallows its consistency-catch-up
    // traffic (HandoffFetch/HandoffData never cross). The node must stay
    // in the rejoining state — on the put vring, never on the get vring —
    // and serve zero gets. The outage itself is driven by the same plan.
    let probe = NiceCluster::build(ClusterCfg::new(8, 3, Vec::new()));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 10);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[1] as usize;
    let victim_ip = probe.server_ips[victim];
    let others: Vec<Ipv4> = probe
        .server_ips
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != victim)
        .map(|(_, &ip)| ip)
        .collect();
    drop(probe);

    // Every object is written while the victim is down, so its store can
    // only become get-consistent through the catch-up we then block.
    let ops: Vec<ClientOp> = keys
        .iter()
        .map(|k| ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(b"x".to_vec()),
        })
        .collect();
    let plan = FaultPlan::new(9)
        .outage(victim, Time::from_ms(100), Some(Time::from_secs(2)))
        .partition(
            vec![victim_ip],
            others,
            Time::from_secs(2),
            Time::from_secs(600),
        );
    let mut c = {
        let mut cfg = fast(8, 3, vec![ops]);
        cfg.host.client_start = Time::from_ms(500);
        cfg.host.fault_plan = Some(plan);
        NiceCluster::build(cfg)
    };
    assert!(c.run_until_done(Time::from_secs(30)), "puts drain");
    assert!(c.client(0).records.iter().all(OpRecord::ok));
    c.sim.run_until(Time::from_secs(12));

    let v = NodeIdx(victim as u32);
    let evs: Vec<&MetaEvent> = c.meta_app().events.iter().map(|(_, e)| e).collect();
    assert!(
        evs.contains(&&MetaEvent::NodeRejoining(v)),
        "victim never re-entered the put ring: {evs:?}"
    );
    assert!(
        !evs.contains(&&MetaEvent::NodeRecovered(v)),
        "victim reached the get ring without its catch-up data: {evs:?}"
    );
    assert_ne!(
        c.meta_app().node_state(v),
        NodeState::Up,
        "victim must stay hidden from gets while inconsistent"
    );
    assert_eq!(c.server(victim).metrics().counter("engine.gets_served"), 0);
    assert!(c.sim.fault_stats().expect("plan installed").partitioned > 0);
}

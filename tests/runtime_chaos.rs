//! Crash–restart survivability on the real runtime: seeded kill/restart
//! storms over real loopback UDP, with durable WAL recovery underneath.
//!
//! The contract under test is fsync-before-ack end to end: once a client
//! saw `ok()` for a put, a storm of node crashes, restarts, packet loss,
//! and duplication must never lose that write. Crashed nodes come back
//! under the same identity, replay their file WAL, run the two-phase
//! rejoin (sync from peers before serving gets), and the final reads
//! must find every acknowledged value.
//!
//! The schedule is a [`ChaosPlan`] — a pure function of one seed — so a
//! failure replays exactly: `CHAOS_SEED=<n> cargo test --test
//! runtime_chaos`. As with `tests/real_cluster.rs`, assertions are on
//! protocol outcomes, never on timing.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use nice::kv_core::{ChaosPlan, ChaosSpec, History, RetryPolicy};
use nice::noob::{GatewayPolicy, NoobMode, RealNoobCfg, RealNoobCluster, RealOp};
use nice::rt::{FaultPlan, Time};

/// Storage nodes in the storm cluster.
const SERVERS: usize = 5;
/// Distinct keys the storm workload cycles over.
const STORM_KEYS: usize = 48;

/// The replay seed: `CHAOS_SEED` env var, or the committed default.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A5)
}

/// The storm schedule shape: three crash/restart windows on distinct
/// nodes under packet loss/duplication/delay, all healed by the horizon.
fn storm_spec() -> ChaosSpec {
    ChaosSpec {
        nodes: SERVERS,
        horizon: Time::from_secs(6),
        crashes: 3,
        isolations: 0,
        metadata_failover: false,
        admin_churn: false,
    }
}

/// Map the plan's packet-fault intensities onto the real runtime's
/// socket-level nemesis (probabilities → parts-per-million).
fn to_fault_plan(p: &ChaosPlan) -> FaultPlan {
    FaultPlan {
        seed: p.seed,
        loss_ppm: (p.loss * 1e6) as u32,
        dup_ppm: (p.dup * 1e6) as u32,
        delay_ppm: (p.delay_prob * 1e6) as u32,
        delay_max: p.delay_max,
        active_from: p.fault_from,
        active_until: p.fault_until,
        partitions: Vec::new(),
    }
}

/// A process-unique scratch directory for WAL files.
fn scratch_wal_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nice-wal-{tag}-{}", std::process::id()))
}

fn wait_done(cluster: &RealNoobCluster, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cluster.all_done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cluster.all_done()
}

/// Wait until every listed server is up and past its rejoin sync phase.
fn wait_ready(cluster: &RealNoobCluster, servers: &[usize], timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if servers.iter().all(|&i| cluster.server_ready(i)) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    servers.iter().all(|&i| cluster.server_ready(i))
}

fn assert_linearizable(history: &History) {
    let violations = history.check();
    assert!(
        violations.is_empty(),
        "storm history is not per-key linearizable:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>()
    );
}

/// The schedule is a pure function of the seed: deriving it twice gives
/// byte-identical renders, which is what makes `CHAOS_SEED=<n>` an exact
/// replay and lets a CI failure be reproduced locally from one number.
#[test]
fn chaos_plan_replays_byte_identical_for_same_seed() {
    let seed = chaos_seed();
    let a = ChaosPlan::generate(seed, &storm_spec());
    let b = ChaosPlan::generate(seed, &storm_spec());
    assert_eq!(a.render(), b.render());
    assert!(a.crashes.len() >= 3, "storm spec draws 3 crash windows");
    assert_ne!(
        a.render(),
        ChaosPlan::generate(seed ^ 1, &storm_spec()).render(),
        "different seeds must draw different schedules"
    );
}

/// WAL recovery in isolation (no nemesis): acknowledge writes, crash
/// *every* server at once — volatile state is gone cluster-wide — then
/// restart and read everything back. The data can only have come from
/// the per-node WAL files.
#[test]
fn wal_replay_survives_whole_cluster_crash() {
    let wal_root = scratch_wal_root("replay");
    let _ = std::fs::remove_dir_all(&wal_root);
    let mut cfg = RealNoobCfg::new(3, 2, vec![Vec::new()]);
    cfg.mode = NoobMode::Quorum { k: 1 };
    cfg.gateway = Some(GatewayPolicy::Primary);
    cfg.spec.retry = Some(RetryPolicy::fixed(Time::from_ms(200)));
    cfg.spec.op_deadline = Some(Time::from_secs(3));
    cfg.host.wal_root = Some(wal_root.clone());
    let mut cluster = RealNoobCluster::build(cfg);

    let puts: Vec<RealOp> = (0..24)
        .map(|i| RealOp::Put {
            key: format!("stable{i}"),
            bytes: format!("v{i}").into_bytes(),
        })
        .collect();
    cluster.push_client_ops(0, puts);
    assert!(
        wait_done(&cluster, Duration::from_secs(30)),
        "healthy puts did not drain"
    );
    for r in &cluster.client_records(0) {
        assert!(r.ok(), "healthy put failed: {:?}", r.err());
    }

    // Lights out: every storage node drops its volatile state.
    for i in 0..3 {
        cluster.crash_server(i);
    }
    for i in 0..3 {
        assert!(
            cluster.server_recovered(i).is_none(),
            "server {i} should be down"
        );
    }
    for i in 0..3 {
        cluster.restart_server(i);
    }
    assert!(
        wait_ready(&cluster, &[0, 1, 2], Duration::from_secs(10)),
        "restarted servers never finished their rejoin sync"
    );
    let recovered: usize = (0..3).filter_map(|i| cluster.server_recovered(i)).sum();
    assert!(
        recovered >= 24,
        "24 acked puts must leave at least 24 WAL records cluster-wide, got {recovered}"
    );

    let gets: Vec<RealOp> = (0..24)
        .map(|i| RealOp::Get {
            key: format!("stable{i}"),
        })
        .collect();
    cluster.push_client_ops(0, gets);
    assert!(
        wait_done(&cluster, Duration::from_secs(30)),
        "post-recovery reads did not drain"
    );
    let records = cluster.client_records(0);
    for (i, r) in records.iter().skip(24).enumerate() {
        assert!(
            r.ok(),
            "acked key stable{i} lost across the cluster-wide crash: {:?}",
            r.err()
        );
        assert_eq!(
            r.bytes.as_deref(),
            Some(format!("v{i}").as_bytes()),
            "key stable{i} recovered the wrong value"
        );
    }
    assert_linearizable(&cluster.history());
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

/// The acceptance storm: a 5-node WAL-backed cluster behind a gateway
/// takes three seeded crash/restart hits while the socket nemesis
/// drops, duplicates, and delays datagrams — with a closed-loop put/get
/// workload running throughout. Afterwards: every acknowledged write is
/// still readable, the combined history (storm + final audit reads)
/// linearizes per key, and the nemesis provably saw traffic.
#[test]
fn seeded_storm_loses_no_acknowledged_write() {
    let seed = chaos_seed();
    let plan = ChaosPlan::generate(seed, &storm_spec());
    eprintln!("replay with CHAOS_SEED={seed}\n{}", plan.render());

    let wal_root = scratch_wal_root(&format!("storm-{seed}"));
    let _ = std::fs::remove_dir_all(&wal_root);
    let mut cfg = RealNoobCfg::new(SERVERS, 2, vec![Vec::new(), Vec::new(), Vec::new()]);
    cfg.spec.seed = seed;
    cfg.mode = NoobMode::Quorum { k: 1 };
    cfg.gateway = Some(GatewayPolicy::Primary);
    // Exponential backoff keeps retry floods off a downed node; the
    // total deadline bounds every op even when its primary is mid-
    // crash, so the closed-loop queue keeps moving through the storm.
    cfg.spec.retry = Some(RetryPolicy {
        base: Time::from_ms(100),
        cap: Time::from_ms(800),
        exponential: true,
        jitter_pct: 30,
        seed,
    });
    cfg.spec.op_deadline = Some(Time::from_secs(3));
    cfg.host.wal_root = Some(wal_root.clone());
    cfg.host.nemesis = Some(to_fault_plan(&plan));
    let mut cluster = RealNoobCluster::build(cfg);

    // The storm timeline: crash/restart events from the plan, plus
    // workload waves every 400 ms so operations are in flight across
    // every fault window. All driven from this thread off one clock.
    enum Ev {
        Crash(usize),
        Restart(usize),
        Wave(usize),
    }
    let mut timeline: Vec<(Time, Ev)> = Vec::new();
    for c in &plan.crashes {
        timeline.push((c.down, Ev::Crash(c.node)));
        timeline.push((c.up, Ev::Restart(c.node)));
    }
    let mut wave = 0;
    let mut t = Time::from_ms(200);
    while t < storm_spec().horizon {
        timeline.push((t, Ev::Wave(wave)));
        wave += 1;
        t += Time::from_ms(400);
    }
    timeline.sort_by_key(|&(t, _)| t.as_ns());

    let start = Instant::now();
    for (at, ev) in timeline {
        let target = Duration::from_nanos(at.as_ns());
        if let Some(gap) = target.checked_sub(start.elapsed()) {
            std::thread::sleep(gap);
        }
        match ev {
            Ev::Crash(n) => cluster.crash_server(n),
            Ev::Restart(n) => cluster.restart_server(n),
            Ev::Wave(w) => {
                for j in 0..cluster.client_ips.len() {
                    let ops: Vec<RealOp> = (0..4)
                        .map(|i| {
                            let k = (w * 7 + j * 13 + i * 3) % STORM_KEYS;
                            if i % 2 == 0 {
                                RealOp::Put {
                                    key: format!("storm{k}"),
                                    bytes: format!("c{j}-w{w}-i{i}").into_bytes(),
                                }
                            } else {
                                RealOp::Get {
                                    key: format!("storm{k}"),
                                }
                            }
                        })
                        .collect();
                    cluster.push_client_ops(j, ops);
                }
            }
        }
    }

    assert!(
        wait_done(&cluster, Duration::from_secs(120)),
        "storm workload did not drain after the faults healed"
    );
    let restarted: Vec<usize> = plan.crashes.iter().map(|c| c.node).collect();
    assert!(
        wait_ready(&cluster, &restarted, Duration::from_secs(15)),
        "a restarted server never finished its rejoin sync"
    );

    // Every value ever sent per key, and the set of keys with at least
    // one *acknowledged* put — the survivability obligation.
    let mut sent: BTreeMap<String, BTreeSet<Vec<u8>>> = BTreeMap::new();
    let mut acked: BTreeSet<String> = BTreeSet::new();
    let mut acked_puts = 0usize;
    for j in 0..cluster.client_ips.len() {
        for r in cluster.client_records(j) {
            if r.is_put {
                if let Some(b) = &r.bytes {
                    sent.entry(r.key.clone()).or_default().insert(b.clone());
                }
                if r.ok() {
                    acked.insert(r.key.clone());
                    acked_puts += 1;
                }
            }
        }
    }
    assert!(
        acked_puts >= STORM_KEYS,
        "storm too quiet to be meaningful: only {acked_puts} acked puts"
    );

    // The audit wave: read back every key that ever got an ack, on the
    // healed cluster. A NotFound here is a lost acknowledged write.
    let before_audit = cluster.client_records(0).len();
    let audit: Vec<RealOp> = acked
        .iter()
        .map(|k| RealOp::Get { key: k.clone() })
        .collect();
    cluster.push_client_ops(0, audit);
    assert!(
        wait_done(&cluster, Duration::from_secs(60)),
        "audit reads did not drain"
    );
    for r in cluster.client_records(0).iter().skip(before_audit) {
        assert!(
            r.ok(),
            "acknowledged write on key {} was lost in the storm: {:?}",
            r.key,
            r.err()
        );
        let value = r.bytes.as_deref().expect("found get carries bytes");
        assert!(
            sent.get(&r.key).is_some_and(|vals| vals.contains(value)),
            "key {} returned bytes nobody wrote: {:?}",
            r.key,
            String::from_utf8_lossy(value)
        );
    }

    assert_linearizable(&cluster.history());

    let stats = cluster.runtime.fault_stats().render();
    eprintln!("{stats}");
    assert!(
        !stats.contains("sent=0 "),
        "nemesis saw no traffic — the storm tested nothing: {stats}"
    );
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

//! The seeded chaos suite: NICE and NOOB under randomized fault
//! schedules, checked against per-key linearizability.
//!
//! Every run follows the same shape: derive a [`ChaosPlan`] from one
//! seed (crash/restart windows, node isolations, packet loss /
//! duplication / delay, optional metadata failover and admin churn), map
//! it onto the simulator's `FaultPlan`, drive a wave-based put/get
//! workload across the fault window, and finally feed everything the
//! clients observed into the [`History`] checker. A run passes when all
//! clients drain, enough operations succeeded for the history to be
//! non-vacuous, and every per-key history linearizes.
//!
//! Fast tier (`cargo test --test chaos`): two fixed seeds per system ×
//! mode cell, plus the replay-identity, checker-mutation, and
//! metadata-failover tests. Full sweep (`--include-ignored`, run by
//! `scripts/check.sh --release`): seeds 1..=8 across the whole matrix.
//! Set `CHAOS_SEED=<n>` to replay one chosen seed through the sweep.

use nice::kv::{
    AdminOp, ClientApp, ClientOp, ClusterCfg, KvClient, MetaRole, MetadataApp, NiceCluster,
    PutMode, RetryBackoff, Value,
};
use nice::kv_core::{AdminEvent, ChaosPlan, ChaosSpec, History, Violation, ViolationKind};
use nice::noob::{Access, NoobClientApp, NoobCluster, NoobClusterCfg, NoobMode};
use nice::ring::{NodeIdx, PartitionId};
use nice::sim::{FaultPlan, HostId, Ipv4, Simulation, Time};
use nice::workload::{Rng, XorShiftRng};

const NODES: usize = 8;
const R: usize = 3;
const CLIENTS: usize = 4;
const HORIZON: Time = Time::from_secs(8);
const DEADLINE: Time = Time::from_secs(120);
/// Workload waves: pushed every `WAVE_GAP` starting at `WAVE_START`, so
/// operations are in flight across the whole fault window.
const WAVES: usize = 11;
const WAVE_START: Time = Time::from_ms(500);
const WAVE_GAP: Time = Time::from_ms(700);
const OPS_PER_WAVE: usize = 4;

/// One cell of the {system} × {replication mode} matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cell {
    /// NICE with the §4.3 2PC protocol (plus metadata failover and admin
    /// churn in its chaos spec — the full §4.4 machinery).
    NiceTwoPc,
    /// NICE with §6.3 any-k quorum puts (k = R): the "primary-only"-like
    /// direct path, no 2PC rounds.
    NiceQuorum,
    /// NOOB with 2PC across replicas (RAC direct routing).
    NoobTwoPc,
    /// NOOB primary-backup (Figure 2 solid arrows; durable at all
    /// replicas before the ack).
    NoobPrimary,
}

impl Cell {
    fn spec(self) -> ChaosSpec {
        match self {
            // NICE runs the full nemesis; NOOB has no failure detector or
            // failover, so its schedule sticks to crash/restart +
            // isolation + packet-level faults.
            Cell::NiceTwoPc => ChaosSpec {
                nodes: NODES,
                horizon: HORIZON,
                crashes: 2,
                isolations: 1,
                metadata_failover: true,
                admin_churn: true,
            },
            Cell::NiceQuorum => ChaosSpec {
                nodes: NODES,
                horizon: HORIZON,
                crashes: 2,
                isolations: 1,
                metadata_failover: false,
                admin_churn: false,
            },
            Cell::NoobTwoPc | Cell::NoobPrimary => ChaosSpec {
                nodes: NODES,
                horizon: HORIZON,
                crashes: 1,
                isolations: 1,
                metadata_failover: false,
                admin_churn: false,
            },
        }
    }

    /// Contended multi-writer keys are only sound under 2PC; the direct
    /// paths order concurrent writers by client-local sequence numbers,
    /// so their chaos workloads keep each key single-writer.
    fn shared_keys(self) -> bool {
        matches!(self, Cell::NiceTwoPc | Cell::NoobTwoPc)
    }
}

/// What one chaos run produced.
struct RunOutcome {
    history: History,
    /// plan render + fault trace + history render: the byte-identity
    /// replay witness.
    trace: String,
    drained: bool,
    pushed_ops: usize,
    /// Per-client wedge report when `!drained` (empty otherwise).
    stuck: String,
}

/// Describe what a wedged client is doing, for drain-failure asserts.
fn client_debug(j: usize, core: &kv_core::ClientCore) -> String {
    let inflight = match core.inflight_detail() {
        Some((op, id, start, attempts)) => format!(
            "inflight {op:?} id={id:?} since={}ns attempts={attempts}",
            start.as_ns()
        ),
        None => "idle".to_owned(),
    };
    format!(
        "client {j}: done_at={:?} records={} {inflight}\n",
        core.done_at,
        core.records.len()
    )
}

// ---------------------------------------------------------------------
// The generic drive harness: everything a chaos run does to client apps
// goes through `KvClient`, so NICE and NOOB share one code path instead
// of mirrored per-system blocks.
// ---------------------------------------------------------------------

/// Push one wave of per-client op lists; returns how many ops were fed.
fn push_wave<A: KvClient + std::any::Any>(
    sim: &mut Simulation,
    clients: &[HostId],
    per_client: &[Vec<ClientOp>],
) -> usize {
    let mut pushed = 0;
    for (j, &h) in clients.iter().enumerate() {
        let ops = per_client[j].clone();
        pushed += ops.len();
        sim.app_mut::<A>(h).push_ops(ops);
    }
    pushed
}

/// Per-client wedge report for drain-failure asserts.
fn stuck_report<A: KvClient + std::any::Any>(sim: &Simulation, clients: &[HostId]) -> String {
    clients
        .iter()
        .enumerate()
        .map(|(j, &h)| client_debug(j, sim.app::<A>(h).core()))
        .collect()
}

/// Feed everything every client observed into one [`History`].
fn record_history<A: KvClient + std::any::Any>(
    sim: &Simulation,
    clients: &[HostId],
    ips: &[Ipv4],
) -> History {
    let mut history = History::new();
    for (j, &h) in clients.iter().enumerate() {
        history.record_client(ips[j], sim.app::<A>(h).core());
    }
    history
}

/// The common tail of a chaos run: wedge report, history capture, and
/// the byte-identity replay trace.
fn finish_run<A: KvClient + std::any::Any>(
    sim: &Simulation,
    clients: &[HostId],
    ips: &[Ipv4],
    plan: &ChaosPlan,
    drained: bool,
    pushed: usize,
) -> RunOutcome {
    let stuck = if drained {
        String::new()
    } else {
        stuck_report::<A>(sim, clients)
    };
    let history = record_history::<A>(sim, clients, ips);
    let trace = format!("{}{}{}", plan.render(), sim.fault_trace(), history.render());
    RunOutcome {
        history,
        trace,
        drained,
        pushed_ops: pushed,
        stuck,
    }
}

/// The per-client operation waves for one seed: `[wave][client]` op
/// lists, a pure function of `(seed, shared)`.
fn waves(seed: u64, shared: bool) -> Vec<Vec<Vec<ClientOp>>> {
    let mut rng = XorShiftRng::seed_from_u64(seed ^ 0x00C4_A05C_4A05_C4A0);
    let mut out = Vec::with_capacity(WAVES);
    for w in 0..WAVES {
        let mut per_client = Vec::with_capacity(CLIENTS);
        for j in 0..CLIENTS {
            let mut ops = Vec::with_capacity(OPS_PER_WAVE);
            for i in 0..OPS_PER_WAVE {
                let key = if shared && rng.random_f64() < 0.35 {
                    format!("hot-{}", rng.random_range(0u64..2))
                } else {
                    format!("s{seed}-c{j}-k{}", rng.random_range(0u64..3))
                };
                if rng.random_f64() < 0.6 {
                    ops.push(ClientOp::Put {
                        key,
                        value: Value::from_bytes(format!("v-s{seed}-c{j}-w{w}-o{i}").into_bytes()),
                    });
                } else {
                    ops.push(ClientOp::Get { key });
                }
            }
            per_client.push(ops);
        }
        out.push(per_client);
    }
    out
}

fn wave_time(w: usize) -> Time {
    WAVE_START + WAVE_GAP * w as u64
}

/// Map the system-agnostic plan onto the simulator's fault plan.
fn fault_plan_of(plan: &ChaosPlan, server_ips: &[Ipv4]) -> FaultPlan {
    let mut fp = FaultPlan::new(plan.seed)
        .loss(plan.loss)
        .duplication(plan.dup)
        .extra_delay(plan.delay_prob, plan.delay_max)
        .window(plan.fault_from, plan.fault_until);
    for c in &plan.crashes {
        fp = fp.outage(c.node, c.down, Some(c.up));
    }
    for iso in &plan.isolations {
        let others: Vec<Ipv4> = server_ips
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != iso.node)
            .map(|(_, &ip)| ip)
            .collect();
        fp = fp.partition(vec![server_ips[iso.node]], others, iso.from, iso.until);
    }
    fp
}

/// Both clusters hand out the same storage addresses; computing them up
/// front lets the fault plan exist before the cluster does.
fn storage_ips(total: usize) -> Vec<Ipv4> {
    (0..total)
        .map(|i| Ipv4::new(10, 0, 0, 10 + i as u8))
        .collect()
}

fn fast_timers(kv: &mut nice::kv::KvConfig, seed: u64) {
    kv.hb_interval = Time::from_ms(100);
    kv.op_timeout = Time::from_ms(100);
    kv.client_retry = Time::from_ms(400);
    // The backoff satellite, exercised under chaos: doubling delays
    // capped at 1.6 s with 30% deterministic jitter.
    kv.retry_backoff = Some(RetryBackoff {
        cap: Time::from_ms(1600),
        jitter_pct: 30,
        seed,
    });
}

fn run_nice(seed: u64, mode: PutMode, spec: &ChaosSpec, shared: bool) -> RunOutcome {
    let plan = ChaosPlan::generate(seed, spec);
    let fp = fault_plan_of(&plan, &storage_ips(NODES));
    let mut cfg = ClusterCfg::new(NODES, R, vec![Vec::new(); CLIENTS]);
    cfg.spec.seed = seed;
    cfg.host.client_start = Time::from_ms(400);
    cfg.host.fault_plan = Some(fp);
    fast_timers(&mut cfg.kv, seed);
    cfg.kv.put_mode = mode;
    if plan.meta_crash.is_some() {
        cfg.metadata_standby = true;
    }
    if !plan.admin.is_empty() {
        cfg.spec.spares = 1;
    }
    let mut c = NiceCluster::build(cfg);
    assert_eq!(&c.server_ips[..NODES], &storage_ips(NODES)[..]);
    if let Some(t) = plan.meta_crash {
        c.sim.schedule_crash(t, c.meta);
    }

    // Merge workload waves and admin events into one timeline.
    enum Act {
        Wave(usize),
        Admin(AdminEvent),
    }
    let mut timeline: Vec<(Time, Act)> = (0..WAVES).map(|w| (wave_time(w), Act::Wave(w))).collect();
    for &(t, ev) in &plan.admin {
        timeline.push((t, Act::Admin(ev)));
    }
    timeline.sort_by_key(|&(t, _)| t);

    let wave_ops = waves(seed, shared);
    let mut pushed = 0usize;
    for (t, act) in timeline {
        c.sim.run_until(t);
        match act {
            Act::Wave(w) => {
                pushed += push_wave::<ClientApp>(&mut c.sim, &c.clients.clone(), &wave_ops[w]);
            }
            Act::Admin(ev) => {
                // Queue on whichever metadata service is alive: the
                // standby owns the cluster once the active crashed.
                let meta_dead = plan.meta_crash.is_some_and(|mc| mc <= t);
                let host = if meta_dead {
                    c.meta_standby.unwrap_or(c.meta)
                } else {
                    c.meta
                };
                let op = match ev {
                    AdminEvent::AddNode(n) => AdminOp::AddNode(NodeIdx(n as u32)),
                    AdminEvent::RemoveNode(n) => AdminOp::RemoveNode(NodeIdx(n as u32)),
                };
                c.sim.app_mut::<MetadataApp>(host).queue_admin(op);
            }
        }
    }
    let drained = c.run_until_done(DEADLINE);
    finish_run::<ClientApp>(&c.sim, &c.clients, &c.client_ips, &plan, drained, pushed)
}

fn run_noob(seed: u64, mode: NoobMode, spec: &ChaosSpec, shared: bool) -> RunOutcome {
    let plan = ChaosPlan::generate(seed, spec);
    let fp = fault_plan_of(&plan, &storage_ips(NODES));
    let mut nice_cfg = ClusterCfg::new(NODES, R, vec![Vec::new(); CLIENTS]);
    nice_cfg.spec.seed = seed;
    nice_cfg.host.client_start = Time::from_ms(400);
    nice_cfg.host.fault_plan = Some(fp);
    fast_timers(&mut nice_cfg.kv, seed);
    // RAC direct routing: clients know placement, no gateway middlebox —
    // the fault schedule hits the storage protocol, nothing else.
    let cfg = NoobClusterCfg::from_nice(&nice_cfg, Access::Rac, mode);
    let mut c = NoobCluster::build(cfg);

    let wave_ops = waves(seed, shared);
    let mut pushed = 0usize;
    for (w, per_client) in wave_ops.iter().enumerate() {
        c.sim.run_until(wave_time(w));
        pushed += push_wave::<NoobClientApp>(&mut c.sim, &c.clients.clone(), per_client);
    }
    let drained = c.run_until_done(DEADLINE);
    // NOOB's builder assigns client addresses sequentially in
    // 10.0.1.0/24 (no LB divisions to spread over).
    let ips: Vec<Ipv4> = (0..c.clients.len())
        .map(|j| Ipv4(Ipv4::new(10, 0, 1, 0).0 + 1 + j as u32))
        .collect();
    finish_run::<NoobClientApp>(&c.sim, &c.clients, &ips, &plan, drained, pushed)
}

fn run_cell(cell: Cell, seed: u64) -> RunOutcome {
    let spec = cell.spec();
    let shared = cell.shared_keys();
    match cell {
        Cell::NiceTwoPc => run_nice(seed, PutMode::TwoPc, &spec, shared),
        Cell::NiceQuorum => run_nice(seed, PutMode::Quorum { k: R }, &spec, shared),
        Cell::NoobTwoPc => run_noob(seed, NoobMode::TwoPc, &spec, shared),
        Cell::NoobPrimary => run_noob(seed, NoobMode::PrimaryOnly, &spec, shared),
    }
}

fn assert_run_ok(cell: Cell, seed: u64, out: &RunOutcome) {
    assert!(
        out.drained,
        "{cell:?} seed {seed}: clients never drained (ops wedged past the heal horizon)\n{}",
        out.stuck
    );
    let violations = out.history.check();
    assert!(
        violations.is_empty(),
        "{cell:?} seed {seed}: {} linearizability violations:\n{}\nhistory:\n{}",
        violations.len(),
        violations
            .iter()
            .map(Violation::to_string)
            .collect::<Vec<_>>()
            .join("\n"),
        out.history.render(),
    );
    // Non-vacuity: chaos must not have starved the run of real evidence.
    assert!(
        out.history.ok_count() * 2 >= out.pushed_ops,
        "{cell:?} seed {seed}: only {}/{} ops succeeded — schedule too hostile to mean anything",
        out.history.ok_count(),
        out.pushed_ops,
    );
}

const FAST_SEEDS: [u64; 2] = [11, 12];

#[test]
fn chaos_fast_nice_twopc() {
    for seed in FAST_SEEDS {
        assert_run_ok(Cell::NiceTwoPc, seed, &run_cell(Cell::NiceTwoPc, seed));
    }
}

#[test]
fn chaos_fast_nice_quorum() {
    for seed in FAST_SEEDS {
        assert_run_ok(Cell::NiceQuorum, seed, &run_cell(Cell::NiceQuorum, seed));
    }
}

#[test]
fn chaos_fast_noob_twopc() {
    for seed in FAST_SEEDS {
        assert_run_ok(Cell::NoobTwoPc, seed, &run_cell(Cell::NoobTwoPc, seed));
    }
}

#[test]
fn chaos_fast_noob_primary() {
    for seed in FAST_SEEDS {
        assert_run_ok(Cell::NoobPrimary, seed, &run_cell(Cell::NoobPrimary, seed));
    }
}

/// The full acceptance sweep: ≥ 8 seeds × {NICE, NOOB} × {2PC,
/// primary-only}. Release tier only (`scripts/check.sh --release` runs
/// it via `--include-ignored`). `CHAOS_SEED=<n>` narrows it to one
/// chosen seed for replay/debugging.
#[test]
#[ignore = "full seed sweep: run with --release --include-ignored (or CHAOS_SEED=<n>)"]
fn chaos_sweep_full_matrix() {
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => (1..=8).collect(),
    };
    for cell in [
        Cell::NiceTwoPc,
        Cell::NiceQuorum,
        Cell::NoobTwoPc,
        Cell::NoobPrimary,
    ] {
        for &seed in &seeds {
            assert_run_ok(cell, seed, &run_cell(cell, seed));
        }
    }
}

#[test]
fn chaos_replay_is_byte_identical() {
    let a = run_cell(Cell::NiceTwoPc, 5);
    let b = run_cell(Cell::NiceTwoPc, 5);
    assert_eq!(
        a.trace, b.trace,
        "same seed must replay the plan, the fault trace, and the history byte-for-byte"
    );
    let c = run_cell(Cell::NiceTwoPc, 6);
    assert_ne!(a.trace, c.trace, "different seeds must actually differ");
}

// ---------------------------------------------------------------------
// Checker mutation: break the §3.3 get-ring-hiding rule on purpose.
// ---------------------------------------------------------------------

/// The `rejoining_node_with_lost_catchup_stays_off_get_ring` scenario,
/// re-run as a *history* experiment: all writes land while a replica is
/// down, its catch-up traffic is swallowed by a partition, and then gets
/// are spread across every LB division. With the §3.3 rule intact the
/// rejoining node stays invisible and every get is served consistently;
/// with the deliberate mutation it serves (empty-store) gets.
fn ring_hiding_violations(break_hiding: bool) -> Vec<Violation> {
    let probe = NiceCluster::build(ClusterCfg::new(NODES, R, Vec::new()));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 10);
    let replicas: Vec<u32> = probe.ring.replica_set(p).iter().map(|n| n.0).collect();
    let victim = replicas[1] as usize;
    let victim_ip = probe.server_ips[victim];
    let others: Vec<Ipv4> = probe
        .server_ips
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != victim)
        .map(|(_, &ip)| ip)
        .collect();
    drop(probe);

    let puts: Vec<ClientOp> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| ClientOp::Put {
            key: k.clone(),
            value: Value::from_bytes(format!("mv{i}").into_bytes()),
        })
        .collect();
    let plan = FaultPlan::new(9)
        .outage(victim, Time::from_ms(100), Some(Time::from_secs(2)))
        .partition(
            vec![victim_ip],
            others,
            Time::from_secs(2),
            Time::from_secs(600),
        );
    let mut clients = vec![Vec::new(); CLIENTS];
    clients[0] = puts;
    let mut cfg = ClusterCfg::new(NODES, R, clients);
    cfg.host.client_start = Time::from_ms(500);
    cfg.host.fault_plan = Some(plan);
    cfg.kv.hb_interval = Time::from_ms(100);
    cfg.kv.op_timeout = Time::from_ms(100);
    cfg.kv.client_retry = Time::from_ms(400);
    cfg.kv.break_rejoin_get_hiding = break_hiding;
    let mut c = NiceCluster::build(cfg);
    assert!(c.run_until_done(Time::from_secs(30)), "puts drain");

    // 4 s: the victim has rejoined the put ring but its catch-up is
    // blocked, so it sits in the Rejoining state with an empty store.
    // Fan gets out from every client — the LB divisions map one of them
    // onto each get target.
    c.sim.run_until(Time::from_secs(4));
    for &h in &c.clients.clone() {
        c.sim
            .app_mut::<ClientApp>(h)
            .push_ops(keys.iter().map(|k| ClientOp::Get { key: k.clone() }));
    }
    assert!(c.run_until_done(Time::from_secs(40)), "gets drain");

    record_history::<ClientApp>(&c.sim, &c.clients, &c.client_ips).check()
}

#[test]
fn checker_catches_broken_get_ring_hiding() {
    let broken = ring_hiding_violations(true);
    assert!(
        !broken.is_empty(),
        "the deliberate §3.3 mutation produced no violation — the checker is blind"
    );
    assert!(
        broken.iter().any(|v| v.kind == ViolationKind::StaleRead),
        "expected stale reads from the rejoining node's empty store: {broken:?}"
    );
    // Control: the intact rule must keep the very same schedule clean.
    let intact = ring_hiding_violations(false);
    assert!(intact.is_empty(), "{intact:?}");
}

// ---------------------------------------------------------------------
// Metadata hot-standby takeover mid-put-storm.
// ---------------------------------------------------------------------

#[test]
fn metadata_failover_mid_put_storm_linearizes() {
    // The active metadata service dies while a put storm is in flight;
    // the hot standby promotes itself and then has to orchestrate a
    // storage-node failure on its own. The clients' history must still
    // linearize end to end.
    let probe = NiceCluster::build(ClusterCfg::new(NODES, R, Vec::new()));
    let victim = probe.ring.replica_set(PartitionId(0))[1].0 as usize;
    drop(probe);

    const STORM_CLIENTS: usize = 3;
    const STORM_WAVES: usize = 8;
    const STORM_WAVE_OPS: usize = 250;
    let mut rng = XorShiftRng::seed_from_u64(0x57_0231);
    let mut storm: Vec<Vec<Vec<ClientOp>>> = Vec::new(); // [wave][client]
    for w in 0..STORM_WAVES {
        let mut per_client = Vec::new();
        for j in 0..STORM_CLIENTS {
            let mut ops = Vec::with_capacity(STORM_WAVE_OPS);
            for i in 0..STORM_WAVE_OPS {
                // Mostly single-writer keys, a sprinkle of 2PC-contended
                // shared ones; both stay under the checker's per-key cap.
                let key = if rng.random_f64() < 0.05 {
                    format!("storm-hot-{}", rng.random_range(0u64..8))
                } else {
                    format!("storm-c{j}-k{}", rng.random_range(0u64..30))
                };
                if rng.random_f64() < 0.6 {
                    ops.push(ClientOp::Put {
                        key,
                        value: Value::from_bytes(format!("sv-c{j}-w{w}-o{i}").into_bytes()),
                    });
                } else {
                    ops.push(ClientOp::Get { key });
                }
            }
            per_client.push(ops);
        }
        storm.push(per_client);
    }

    let mut cfg = ClusterCfg::new(NODES, R, vec![Vec::new(); STORM_CLIENTS]);
    cfg.spec.seed = 23;
    cfg.metadata_standby = true;
    cfg.host.client_start = Time::from_ms(400);
    fast_timers(&mut cfg.kv, 23);
    let mut c = NiceCluster::build(cfg);
    let standby = c.meta_standby.expect("standby deployed");
    // Meta dies early in the storm; a storage secondary dies after the
    // promotion — only the new active can install its handoff.
    c.sim.schedule_crash(Time::from_ms(800), c.meta);
    c.sim.schedule_crash(Time::from_ms(1600), c.servers[victim]);

    let mut pushed = 0usize;
    for (w, per_client) in storm.iter().enumerate() {
        c.sim
            .run_until(Time::from_ms(500) + Time::from_ms(400) * w as u64);
        pushed += push_wave::<ClientApp>(&mut c.sim, &c.clients.clone(), per_client);
    }
    assert!(c.run_until_done(Time::from_secs(60)), "storm drains");

    let sb = c.sim.app::<MetadataApp>(standby);
    assert_eq!(sb.role(), MetaRole::Active, "standby promoted itself");

    let history = record_history::<ClientApp>(&c.sim, &c.clients, &c.client_ips);
    let violations = history.check();
    assert!(
        violations.is_empty(),
        "{} violations across the failover:\n{}",
        violations.len(),
        violations
            .iter()
            .map(Violation::to_string)
            .collect::<Vec<_>>()
            .join("\n"),
    );
    assert!(
        history.ok_count() * 2 >= pushed,
        "only {}/{pushed} ops succeeded",
        history.ok_count()
    );
}

/// Telemetry determinism contract: two chaos runs from the same seed —
/// same fault plan, same workload, same config — must produce
/// byte-identical metrics snapshots. Every histogram bucket, counter,
/// and gauge in the merged cluster registry is derived from simulated
/// time and seeded draws, so even one wall-clock or hash-order leak
/// into the snapshot path shows up here as a diff.
#[test]
fn same_seed_chaos_runs_yield_byte_identical_telemetry() {
    let run = || {
        let mut ops: Vec<Vec<ClientOp>> = vec![Vec::new(); 3];
        let mut rng = XorShiftRng::seed_from_u64(0x7E1E);
        for (j, per_client) in ops.iter_mut().enumerate() {
            for i in 0..40 {
                let key = format!("t{}", rng.random_range(0u64..24));
                if i % 4 == 0 {
                    per_client.push(ClientOp::Put {
                        key,
                        value: Value::synthetic(256 + j as u32),
                    });
                } else {
                    per_client.push(ClientOp::Get { key });
                }
            }
        }
        let mut cfg = ClusterCfg::new(6, 3, ops);
        cfg.spec.seed = 0x7E1E;
        cfg.spec.retry_not_found = true;
        cfg.host.fault_plan = Some(FaultPlan::new(0x7E1E).loss(0.01).duplication(0.005));
        fast_timers(&mut cfg.kv, 0x7E1E);
        let mut c = NiceCluster::build(cfg);
        assert!(c.run_until_done(Time::from_secs(120)), "chaos run drains");
        c.metrics().render()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must replay to identical telemetry");
    // The snapshot must be non-vacuous: the hot-path histograms and the
    // engine counters all saw traffic.
    for needle in [
        "client.put_e2e",
        "client.get_e2e",
        "wal.sync",
        "engine.puts_committed",
    ] {
        assert!(a.contains(needle), "snapshot is missing {needle}:\n{a}");
    }
}

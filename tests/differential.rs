//! Differential test: the same seeded YCSB workload and the same
//! `FaultPlan` driven through NICE (2PC over switch multicast) and NOOB
//! (2PC over unicast fan-out) must converge to the same committed
//! object-store state. Both systems now share `kv_core`'s
//! `ReplicationEngine`, so any divergence here is a policy-adapter bug,
//! not a protocol fork.
//!
//! Each client owns a disjoint slice of the YCSB key space (ranks taken
//! mod the client count, load and run phases both filtered to owned
//! keys), so every key has a single serial writer and the final
//! committed value is determined by the workload, not by cross-client
//! message races — which is what makes byte-level comparison across two
//! different transports meaningful.

use std::collections::{BTreeMap, BTreeSet};

use nice::kv::{ClientOp, ClusterCfg, KvClient, NiceCluster, ObjectStore, Value};
use nice::noob::{Access, NoobCluster, NoobClusterCfg, NoobMode};
use nice::sim::{FaultPlan, Time};
use nice::workload::{OpKind, Workload, WorkloadRun, XorShiftRng};

const CLIENTS: usize = 3;
const RECORDS: u64 = 30;
const RUN_OPS: usize = 25;

/// A put whose value encodes the key and per-key version, so two runs
/// committed the same value iff they committed the same write.
fn versioned_put(key: &str, versions: &mut BTreeMap<String, u32>) -> ClientOp {
    let v = versions.entry(key.to_string()).or_insert(0);
    *v += 1;
    ClientOp::Put {
        key: key.to_string(),
        value: Value::from_bytes(format!("{key}#v{v}").into_bytes()),
    }
}

/// Per-client op lists over disjoint key sets: a striped load phase,
/// then a YCSB-A run phase filtered to each client's own keys.
fn build_ops(wl: &Workload, seed: u64) -> Vec<Vec<ClientOp>> {
    let owned: Vec<BTreeSet<String>> = (0..CLIENTS)
        .map(|c| {
            (0..wl.records)
                .filter(|r| (*r as usize) % CLIENTS == c)
                .map(|r| wl.key(r))
                .collect()
        })
        .collect();
    let mut per_client = Vec::new();
    for (c, mine) in owned.iter().enumerate() {
        let mut ops = Vec::new();
        let mut versions = BTreeMap::new();
        for r in 0..wl.records {
            if (r as usize) % CLIENTS == c {
                ops.push(versioned_put(&wl.key(r), &mut versions));
            }
        }
        let mut rng = XorShiftRng::seed_from_u64(seed ^ (c as u64 + 1));
        let mut gen = WorkloadRun::new(wl.clone());
        let load_len = ops.len();
        while ops.len() - load_len < RUN_OPS {
            for op in gen.next_ops(&mut rng) {
                if !mine.contains(&op.key) {
                    continue;
                }
                ops.push(match op.kind {
                    OpKind::Get => ClientOp::Get { key: op.key },
                    OpKind::Put => versioned_put(&op.key, &mut versions),
                });
            }
        }
        per_client.push(ops);
    }
    per_client
}

fn shared_cfg(seed: u64, plan: &Option<FaultPlan>, ops: &[Vec<ClientOp>]) -> ClusterCfg {
    let mut cfg = ClusterCfg::new(6, 3, ops.to_vec());
    cfg.spec.seed = seed;
    cfg.host.fault_plan = plan.clone();
    cfg
}

/// The cluster surface the differential harness needs. Both systems
/// expose the same shape (clients implementing [`KvClient`], servers
/// owning an [`ObjectStore`]), so the drive-and-verify logic in
/// [`drive`] exists once instead of as parallel per-system paths.
trait System {
    /// Name used in assertion messages.
    const NAME: &'static str;
    type Client: KvClient;
    fn run_until_done(&mut self, deadline: Time) -> bool;
    fn run_for(&mut self, t: Time);
    fn client_count(&self) -> usize;
    fn client(&self, i: usize) -> &Self::Client;
    fn stores(&self) -> Vec<&ObjectStore>;
}

impl System for NiceCluster {
    const NAME: &'static str = "NICE";
    type Client = nice::kv::ClientApp;
    fn run_until_done(&mut self, deadline: Time) -> bool {
        NiceCluster::run_until_done(self, deadline)
    }
    fn run_for(&mut self, t: Time) {
        self.sim.run_for(t);
    }
    fn client_count(&self) -> usize {
        self.clients.len()
    }
    fn client(&self, i: usize) -> &Self::Client {
        NiceCluster::client(self, i)
    }
    fn stores(&self) -> Vec<&ObjectStore> {
        (0..self.servers.len())
            .map(|i| self.server(i).store())
            .collect()
    }
}

impl System for NoobCluster {
    const NAME: &'static str = "NOOB";
    type Client = nice::noob::NoobClientApp;
    fn run_until_done(&mut self, deadline: Time) -> bool {
        NoobCluster::run_until_done(self, deadline)
    }
    fn run_for(&mut self, t: Time) {
        self.sim.run_for(t);
    }
    fn client_count(&self) -> usize {
        self.clients.len()
    }
    fn client(&self, i: usize) -> &Self::Client {
        NoobCluster::client(self, i)
    }
    fn stores(&self) -> Vec<&ObjectStore> {
        (0..self.servers.len())
            .map(|i| self.server(i).store())
            .collect()
    }
}

/// Run one system to completion, quiesce it, assert every client op
/// succeeded, and fold its committed state — the whole per-system half
/// of the differential check, generic over which system it is.
fn drive<S: System>(mut sys: S) -> BTreeMap<String, Vec<u8>> {
    assert!(
        sys.run_until_done(Time::from_secs(300)),
        "{} did not drain",
        S::NAME
    );
    // Quiesce: let reliable-transport retransmissions of the last
    // commits land before inspecting replica state.
    sys.run_for(Time::from_secs(2));
    for c in 0..sys.client_count() {
        assert!(
            sys.client(c).records().iter().all(nice::kv::OpRecord::ok),
            "{} client {c} had failed ops",
            S::NAME
        );
    }
    committed_state(S::NAME, sys.stores().into_iter())
}

/// Fold every server's committed objects into one `key → bytes` map,
/// asserting replicas agree within the system and no 2PC state is left
/// in doubt (no orphaned locks, no uncommitted pendings).
fn committed_state<'a>(
    system: &str,
    stores: impl Iterator<Item = &'a ObjectStore>,
) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for (i, store) in stores.enumerate() {
        assert!(
            store.in_doubt().is_empty(),
            "{system} server {i} left in-doubt puts: {:?}",
            store.in_doubt()
        );
        for (key, obj) in store.iter() {
            let bytes = obj.value.bytes.as_ref().clone();
            if let Some(prev) = out.insert(key.clone(), bytes.clone()) {
                assert_eq!(prev, bytes, "{system} replicas disagree on `{key}`",);
            }
        }
    }
    out
}

/// Drive the same workload + plan through both systems and compare the
/// final committed stores byte for byte.
fn assert_systems_agree(seed: u64, plan: Option<FaultPlan>) {
    let wl = Workload::a(RECORDS);
    let ops = build_ops(&wl, seed);
    // The paper's system: 2PC over switch multicast, vring addressing.
    let nice_map = drive(NiceCluster::build(shared_cfg(seed, &plan, &ops)));
    // The baseline: 2PC over unicast fan-out, client-side routing (RAC).
    let cfg =
        NoobClusterCfg::from_nice(&shared_cfg(seed, &plan, &ops), Access::Rac, NoobMode::TwoPc);
    let noob_map = drive(NoobCluster::build(cfg));
    assert_eq!(
        nice_map.len(),
        RECORDS as usize,
        "NICE is missing committed keys"
    );
    assert_eq!(nice_map, noob_map, "final committed stores diverge");
}

#[test]
fn nice_and_noob_converge_seed_11() {
    assert_systems_agree(11, None);
}

#[test]
fn nice_and_noob_converge_seed_12() {
    assert_systems_agree(12, None);
}

#[test]
fn nice_and_noob_converge_under_lossy_network() {
    // Loss + duplication + jitter from client start onward: retries and
    // RUDP retransmission must mask it all without forking state.
    let plan = FaultPlan::new(11)
        .loss(0.02)
        .duplication(0.01)
        .extra_delay(0.05, Time::from_us(200))
        .window(Time::from_ms(50), Time::MAX);
    assert_systems_agree(11, Some(plan));
}

//! End-to-end tests of the *real* runtime: a NOOB cluster booted as OS
//! threads serving actual UDP datagrams on loopback, with the resulting
//! client histories fed through the same per-key linearizability checker
//! the simulator's chaos harness uses.
//!
//! These tests exercise wall-clock timers, real sockets, and real packet
//! loss (a killed node's socket closes), so they are about machine
//! behavior, not determinism — assertions are on protocol outcomes, never
//! on timing.

use std::time::{Duration, Instant};

use nice::kv_core::{History, RetryPolicy};
use nice::noob::{GatewayPolicy, NoobMode, RealNoobCfg, RealNoobCluster, RealOp};
use nice::rt::Time;
use nice::workload::{Rng, XorShiftRng};

const KEYS: u32 = 128;

/// A deterministic mixed put/get op list over the shared keyspace.
fn mixed_ops(seed: u64, client: usize, count: usize) -> Vec<RealOp> {
    let mut rng = XorShiftRng::seed_from_u64(seed ^ ((client as u64 + 1) * 0x9E37));
    (0..count)
        .map(|i| {
            let key = format!("user{}", rng.next_u64() % u64::from(KEYS));
            if i % 2 == 0 {
                RealOp::Put {
                    key,
                    bytes: format!("c{client}-i{i}").into_bytes(),
                }
            } else {
                RealOp::Get { key }
            }
        })
        .collect()
}

/// Poll until every client drained its ops (or the deadline passes).
fn wait_done(cluster: &RealNoobCluster, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cluster.all_done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cluster.all_done()
}

fn assert_linearizable(history: &History) {
    let violations = history.check();
    assert!(
        violations.is_empty(),
        "real-cluster history is not per-key linearizable:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>()
    );
}

/// The acceptance run: 4 real client threads push 1,000 ops through a
/// 3-node cluster behind a gateway, over real loopback UDP; the combined
/// history must pass the Wing–Gong per-key checker.
#[test]
fn loopback_noob_cluster_serves_ycsb_slice() {
    let client_ops: Vec<Vec<RealOp>> = (0..4).map(|j| mixed_ops(0xB0B, j, 250)).collect();
    let total: usize = client_ops.iter().map(Vec::len).sum();
    assert!(total >= 1000, "acceptance floor is 1,000 ops");

    let mut cluster = RealNoobCluster::build(RealNoobCfg::new(3, 2, client_ops));
    assert!(
        wait_done(&cluster, Duration::from_secs(60)),
        "cluster did not drain 1,000 ops: {:?}",
        (0..4)
            .map(|j| cluster.client_completed(j))
            .collect::<Vec<_>>()
    );

    let mut completed = 0;
    for j in 0..4 {
        let records = cluster.client_records(j);
        assert_eq!(records.len(), 250, "client {j} lost ops");
        completed += records.len();
        // Puts must all succeed on a healthy cluster; gets may race the
        // first writer of a key and legitimately observe NotFound.
        for r in &records {
            if r.is_put {
                assert!(r.ok(), "client {j} put failed: {:?}", r.err());
            }
        }
    }
    assert_eq!(completed, total);

    let history = cluster.history();
    assert!(history.ok_count() >= 500);
    assert_linearizable(&history);
    cluster.shutdown();
}

/// Kill a storage node mid-run. Ops whose partitions stay fully alive
/// must drain; an op addressed to the dead primary must visibly retry
/// (attempts > 1); and the combined history — including the wedged put,
/// which the checker holds open as a Maybe — must still pass.
#[test]
fn loopback_noob_cluster_kill_one_node_mid_put() {
    // Quorum k=1 over R=2: a put completes once the primary holds the
    // data, so a dead *secondary* must not wedge anything.
    let mut cfg = RealNoobCfg::new(3, 2, vec![Vec::new()]);
    cfg.mode = NoobMode::Quorum { k: 1 };
    cfg.gateway = Some(GatewayPolicy::Primary);
    cfg.spec.retry = Some(RetryPolicy::fixed(Time::from_ms(200)));
    // Total per-op budget: the doomed put gives up after 3 s of
    // wall-clock instead of grinding through the whole 25-attempt
    // budget — the drain below is bounded by the deadline, not by
    // attempts × period (the old flake under scheduler jitter).
    cfg.spec.op_deadline = Some(Time::from_secs(3));
    let mut cluster = RealNoobCluster::build(cfg);

    // Partition the keyspace by who owns it.
    let victim = 2usize;
    let victim_ip = cluster.server_ips[victim];
    let mut dead_primary_key = None;
    let mut live_keys = Vec::new();
    for k in 0..KEYS {
        let key = format!("user{k}");
        let primary = cluster.ring.primary_addr(&key);
        if primary == victim_ip {
            dead_primary_key.get_or_insert(key);
        } else {
            live_keys.push(key);
        }
    }
    let dead_primary_key = dead_primary_key.expect("some key has the victim as primary");
    assert!(live_keys.len() >= 24, "keyspace too concentrated");

    // Phase 1: healthy writes (some replicate *onto* the future victim).
    let warmup: Vec<RealOp> = live_keys
        .iter()
        .take(16)
        .map(|k| RealOp::Put {
            key: k.clone(),
            bytes: format!("warm-{k}").into_bytes(),
        })
        .collect();
    cluster.push_client_ops(0, warmup);
    assert!(
        wait_done(&cluster, Duration::from_secs(30)),
        "healthy warm-up did not drain"
    );

    // Phase 2: kill the victim, then put to a key it was *primary* for
    // (must retry against a dead socket) and to keys it only backed up
    // (quorum k=1 completes without it).
    cluster.kill_server(victim);
    let mut wave: Vec<RealOp> = vec![RealOp::Put {
        key: dead_primary_key.clone(),
        bytes: b"never-acked".to_vec(),
    }];
    wave.extend(live_keys.iter().skip(16).take(8).map(|k| RealOp::Put {
        key: k.clone(),
        bytes: format!("post-kill-{k}").into_bytes(),
    }));
    let survivors = wave.len() - 1;
    cluster.push_client_ops(0, wave);

    // The doomed put holds the head of the client's serial queue until it
    // exhausts its retries, so first observe attempts > 1...
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut saw_retry = false;
    while Instant::now() < deadline {
        if let Some((attempts, key)) = cluster.client_inflight(0) {
            if key == dead_primary_key && attempts > 1 {
                saw_retry = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(saw_retry, "put to a dead primary never retried");

    // ...then wait for the queue to drain: the doomed put gives up, the
    // survivor puts complete against the two live nodes.
    assert!(
        wait_done(&cluster, Duration::from_secs(60)),
        "survivor ops did not drain after the kill"
    );
    let records = cluster.client_records(0);
    assert_eq!(records.len(), 16 + 1 + survivors);
    let doomed = records
        .iter()
        .find(|r| r.key == dead_primary_key)
        .expect("doomed put recorded");
    assert!(
        doomed.is_put && !doomed.ok(),
        "put to a dead primary cannot commit"
    );
    assert!(doomed.attempts > 1, "doomed put should have retried");
    for r in records.iter().filter(|r| r.key != dead_primary_key) {
        assert!(r.ok(), "op on a live partition failed: {:?}", r.err());
    }

    let history = cluster.history();
    assert_linearizable(&history);
    cluster.shutdown();
}

/// The real runtime records the same telemetry as the simulator, from
/// the identical instrumentation points — just with wall-clock values.
/// A WAL-backed put storm must leave a non-empty fsync-latency
/// histogram and matching client end-to-end distributions in the
/// cluster-wide `metrics()` snapshot.
#[test]
fn wal_sync_histogram_fills_under_put_storm() {
    let wal_root = std::env::temp_dir().join(format!("nice-wal-hist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    let puts: Vec<RealOp> = (0..64)
        .map(|i| RealOp::Put {
            key: format!("storm{i}"),
            bytes: vec![0xEE; 512],
        })
        .collect();
    let mut cfg = RealNoobCfg::new(3, 2, vec![puts]);
    cfg.mode = NoobMode::Quorum { k: 1 };
    cfg.gateway = Some(GatewayPolicy::Primary);
    cfg.spec.retry = Some(RetryPolicy::fixed(Time::from_ms(200)));
    cfg.spec.op_deadline = Some(Time::from_secs(3));
    cfg.host.wal_root = Some(wal_root.clone());
    let mut cluster = RealNoobCluster::build(cfg);
    assert!(
        wait_done(&cluster, Duration::from_secs(60)),
        "put storm did not drain"
    );

    let m = cluster.metrics();
    let wal = m.hist("wal.sync").expect("wal.sync histogram exists");
    assert!(
        wal.count() >= 64,
        "expected at least one fsync per acked put, saw {}",
        wal.count()
    );
    assert!(wal.max() >= wal.quantile(1, 2), "quantiles are ordered");
    assert!(m.counter("wal.syncs") >= 64, "WAL sync counter tracks");
    let put = m.hist("client.put_e2e").expect("client histogram exists");
    assert_eq!(put.count(), 64, "every put latency was recorded");
    assert!(
        put.min() > Time::ZERO,
        "wall-clock latencies are strictly positive"
    );

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

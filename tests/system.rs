//! Cross-crate system tests through the `nice` facade: the two systems
//! (NICE and NOOB) run the same workloads and must agree on results while
//! differing in network behavior exactly the way the paper says they do.

use nice::kv::{ClientOp, ClusterCfg, NiceCluster, Value};
use nice::noob::{Access, NoobCluster, NoobClusterCfg, NoobMode};
use nice::sim::Time;

fn workload(n: usize) -> Vec<ClientOp> {
    let mut ops = Vec::new();
    for i in 0..n {
        ops.push(ClientOp::Put {
            key: format!("k{i}"),
            value: Value::from_bytes(format!("value-{i}").into_bytes()),
        });
    }
    for i in 0..n {
        ops.push(ClientOp::Get {
            key: format!("k{i}"),
        });
    }
    ops
}

/// Extract the get results (key -> bytes) from a record list.
fn get_results(records: &[nice::kv::OpRecord]) -> Vec<(String, Option<Vec<u8>>)> {
    records
        .iter()
        .filter(|r| !r.is_put)
        .map(|r| (r.key.clone(), r.bytes.clone()))
        .collect()
}

#[test]
fn both_systems_return_identical_data() {
    let n = 12;
    let shared = |ops| ClusterCfg::new(10, 3, vec![ops]);
    let mut nice_c = NiceCluster::build(shared(workload(n)));
    assert!(nice_c.run_until_done(Time::from_secs(60)));
    let mut noob_c = NoobCluster::build(NoobClusterCfg::from_nice(
        &shared(workload(n)),
        Access::Rac,
        NoobMode::TwoPc,
    ));
    assert!(noob_c.run_until_done(Time::from_secs(60)));
    let a = get_results(&nice_c.client(0).records);
    let b = get_results(&noob_c.client(0).records);
    assert_eq!(a, b, "same workload, same answers");
    assert!(a.iter().all(|(_, v)| v.is_some()));
}

#[test]
fn nice_moves_fewer_bytes_than_noob_for_replicated_puts() {
    // The headline efficiency claim (Figure 6): switch multicast halves
    // (or better) the network load of replicated puts.
    let size = 128 * 1024;
    let ops: Vec<ClientOp> = (0..10)
        .map(|i| ClientOp::Put {
            key: format!("big{i}"),
            value: Value::synthetic(size),
        })
        .collect();
    let shared = |ops| ClusterCfg::new(10, 3, vec![ops]);
    let mut nice_c = NiceCluster::build(shared(ops.clone()));
    assert!(nice_c.run_until_done(Time::from_secs(60)));
    let mut noob_c = NoobCluster::build(NoobClusterCfg::from_nice(
        &shared(ops),
        Access::Rog,
        NoobMode::PrimaryOnly,
    ));
    assert!(noob_c.run_until_done(Time::from_secs(60)));
    let nice_bytes = nice_c.sim.total_link_bytes();
    let noob_bytes = noob_c.sim.total_link_bytes();
    assert!(
        noob_bytes as f64 > nice_bytes as f64 * 1.7,
        "expected >=1.7x network-load reduction: NICE {nice_bytes} vs NOOB {noob_bytes}"
    );
}

#[test]
fn nice_puts_beat_noob_puts_at_large_sizes() {
    // Figure 5's claim, as an invariant: at 1 MB and R=3 the mean NICE
    // put must be at least 2x faster than NOOB+RAC primary-only.
    let ops: Vec<ClientOp> = (0..10)
        .map(|i| ClientOp::Put {
            key: format!("mb{i}"),
            value: Value::synthetic(1 << 20),
        })
        .collect();
    let shared = |ops| ClusterCfg::new(10, 3, vec![ops]);
    let mut nice_c = NiceCluster::build(shared(ops.clone()));
    assert!(nice_c.run_until_done(Time::from_secs(60)));
    let mut noob_c = NoobCluster::build(NoobClusterCfg::from_nice(
        &shared(ops),
        Access::Rac,
        NoobMode::PrimaryOnly,
    ));
    assert!(noob_c.run_until_done(Time::from_secs(60)));
    let nice_put = nice_c.client(0).mean_latency(true).expect("puts ran");
    let noob_put = noob_c.client(0).mean_latency(true).expect("puts ran");
    assert!(
        noob_put.as_ns() as f64 > nice_put.as_ns() as f64 * 2.0,
        "NICE {nice_put} vs NOOB {noob_put}"
    );
}

#[test]
fn deterministic_across_runs() {
    let build = || {
        let mut c = NiceCluster::build(ClusterCfg::new(8, 3, vec![workload(8)]));
        assert!(c.run_until_done(Time::from_secs(60)));
        let lat: Vec<u64> = c
            .client(0)
            .records
            .iter()
            .map(|r| (r.end - r.start).as_ns())
            .collect();
        (lat, c.sim.total_link_bytes(), c.sim.events_processed())
    };
    assert_eq!(build(), build(), "same seed, same universe");
}

#[test]
fn seed_changes_timings_but_not_results() {
    let run_seed = |seed| {
        let mut cfg = ClusterCfg::new(8, 3, vec![workload(6)]);
        cfg.spec.seed = seed;
        let mut c = NiceCluster::build(cfg);
        assert!(c.run_until_done(Time::from_secs(60)));
        get_results(&c.client(0).records)
    };
    assert_eq!(run_seed(1), run_seed(2), "data is seed-independent");
}

#[test]
fn quorum_is_faster_than_full_replication_with_slow_nodes() {
    use nice::kv::PutMode;
    use nice::ring::PartitionId;
    // Mini Figure 8: R=5, 2 slow replicas, any-2 must beat all-5.
    let probe = NiceCluster::build(ClusterCfg::new(10, 5, Vec::new()));
    let p = PartitionId(0);
    let keys = probe.keys_in_partition(p, 5);
    let replicas: Vec<usize> = probe
        .ring
        .replica_set(p)
        .iter()
        .map(|n| n.0 as usize)
        .collect();
    drop(probe);

    let run = |mode: PutMode| {
        let ops: Vec<ClientOp> = keys
            .iter()
            .map(|k| ClientOp::Put {
                key: k.clone(),
                value: Value::synthetic(1 << 20),
            })
            .collect();
        let mut cfg = ClusterCfg::new(10, 5, vec![ops]);
        cfg.kv.put_mode = mode;
        let mut c = NiceCluster::build(cfg);
        for &i in &replicas[3..] {
            c.sim
                .schedule_link_rate(Time::ZERO, c.servers[i], 50_000_000);
        }
        assert!(c.run_until_done(Time::from_secs(120)));
        c.client(0).mean_latency(true).expect("puts ran")
    };
    let anyk = run(PutMode::Quorum { k: 2 });
    let all = run(PutMode::Quorum { k: 5 });
    assert!(
        all.as_ns() as f64 > anyk.as_ns() as f64 * 3.0,
        "any-2 {anyk} vs all-5 {all}"
    );
}
